package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newTestServer builds a handler with a deterministic configuration.
func newTestServer(workers int) http.Handler {
	return New(Config{Workers: workers, BaseSeed: BaseSeedDefault}).Handler()
}

// do posts a JSON body (or issues a GET when body is empty) and returns
// the recorded response.
func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// checkGolden compares got against testdata/<name>, rewriting with -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n got: %s\nwant: %s", name, got, want)
	}
}

func TestValidateBenchGolden(t *testing.T) {
	h := newTestServer(2)
	w := do(t, h, "POST", "/v1/validate", `{"bench":"rotary_pcr"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	checkGolden(t, "validate_rotary_pcr.json", w.Body.Bytes())
}

func TestStatsBenchGolden(t *testing.T) {
	h := newTestServer(2)
	w := do(t, h, "POST", "/v1/stats", `{"bench":"aquaflex_3b"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	checkGolden(t, "stats_aquaflex_3b.json", w.Body.Bytes())
}

func TestBenchListGolden(t *testing.T) {
	h := newTestServer(2)
	w := do(t, h, "GET", "/v1/bench", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	checkGolden(t, "bench_list.json", w.Body.Bytes())
}

func TestBenchGet(t *testing.T) {
	h := newTestServer(2)
	w := do(t, h, "GET", "/v1/bench/rotary_pcr", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var doc struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil || doc.Name != "rotary_pcr" {
		t.Errorf("body name = %q, err %v", doc.Name, err)
	}
	if w := do(t, h, "GET", "/v1/bench/nope", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown benchmark status = %d, want 404", w.Code)
	}
}

func TestConvertRoundTrip(t *testing.T) {
	h := newTestServer(2)
	// JSON -> MINT.
	w := do(t, h, "POST", "/v1/convert", `{"bench":"aquaflex_3b","to":"mint"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("to mint: status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Target string `json:"target"`
		Output string `json:"output"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Target != "mint" || !strings.Contains(resp.Output, "DEVICE") {
		t.Errorf("target %q, output %.40q", resp.Target, resp.Output)
	}
	// MINT text -> JSON (default target for MINT input).
	body, _ := json.Marshal(map[string]string{
		"text":   "DEVICE demo\nLAYER FLOW\nPORT a, b r=100 ;\nCHANNEL c from a 1 to b 1 w=120 ;\nEND LAYER\n",
		"format": "mint",
	})
	w = do(t, h, "POST", "/v1/convert", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("to json: status = %d: %s", w.Code, w.Body)
	}
	var back struct {
		Target string          `json:"target"`
		Device json.RawMessage `json:"device"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Target != "json" || len(back.Device) == 0 {
		t.Errorf("target %q, device %d bytes", back.Target, len(back.Device))
	}
}

func TestPNREndpoint(t *testing.T) {
	h := newTestServer(2)
	w := do(t, h, "POST", "/v1/pnr", `{"bench":"aquaflex_3b","placer":"greedy"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Seed   uint64 `json:"seed"`
		Placer string `json:"placer"`
		Route  struct {
			Routed int `json:"routed"`
			Total  int `json:"total"`
		} `json:"route"`
		Device json.RawMessage `json:"device"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Placer != "greedy" || resp.Seed == 0 || resp.Route.Total == 0 || len(resp.Device) == 0 {
		t.Errorf("response = %+v", resp)
	}
}

func TestRenderSVG(t *testing.T) {
	h := newTestServer(2)
	w := do(t, h, "POST", "/v1/render.svg", `{"bench":"rotary_pcr"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(w.Body.String(), "<svg") {
		t.Error("body is not SVG")
	}
}

func TestHealthz(t *testing.T) {
	h := newTestServer(4)
	w := do(t, h, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Workers != 4 {
		t.Errorf("healthz = %+v", resp)
	}
}

func TestErrorStatusMapping(t *testing.T) {
	h := newTestServer(2)
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"no source", "/v1/validate", `{}`, http.StatusBadRequest},
		{"body not json", "/v1/validate", `nope`, http.StatusBadRequest},
		{"unknown bench", "/v1/validate", `{"bench":"nope"}`, http.StatusNotFound},
		{"bad device json", "/v1/validate", `{"text":"not json","format":"json"}`, http.StatusBadRequest},
		{"bad mint", "/v1/convert", `{"text":"not mint","format":"mint"}`, http.StatusBadRequest},
		{"text without format", "/v1/stats", `{"text":"x"}`, http.StatusBadRequest},
		{"unknown placer", "/v1/pnr", `{"bench":"aquaflex_3b","placer":"nope"}`, http.StatusBadRequest},
		{"bad convert target", "/v1/convert", `{"bench":"aquaflex_3b","to":"xml"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, h, "POST", c.path, c.body)
			if w.Code != c.want {
				t.Errorf("status = %d, want %d: %s", w.Code, c.want, w.Body)
			}
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
				t.Errorf("error body = %q, err %v", w.Body, err)
			}
		})
	}
}

func TestPNRInvalidDevice(t *testing.T) {
	h := newTestServer(2)
	// Structurally parseable but semantically broken: the connection
	// references a component that does not exist.
	device := `{
	  "name": "broken",
	  "layers": [{"id": "flow", "name": "flow", "type": "FLOW"}],
	  "components": [{
	    "id": "p1", "name": "p1", "entity": "PORT", "layers": ["flow"],
	    "x-span": 200, "y-span": 200,
	    "ports": [{"label": "port1", "layer": "flow", "x": 100, "y": 100}]
	  }],
	  "connections": [{
	    "id": "c1", "name": "c1", "layer": "flow",
	    "source": {"component": "ghost", "port": "port1"},
	    "sinks": [{"component": "p1", "port": "port1"}]
	  }]
	}`
	body, _ := json.Marshal(map[string]json.RawMessage{"device": json.RawMessage(device)})
	w := do(t, h, "POST", "/v1/pnr", string(body))
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", w.Code, w.Body)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Code != "invalid-device" {
		t.Errorf("error code = %q, err %v", eb.Code, err)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	h := New(Config{Workers: 1, MaxBodyBytes: 64}).Handler()
	big := fmt.Sprintf(`{"bench":"rotary_pcr","text":%q}`, strings.Repeat("x", 1024))
	w := do(t, h, "POST", "/v1/validate", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413: %s", w.Code, w.Body)
	}
}

func TestPNRCancelledRequest(t *testing.T) {
	h := newTestServer(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest("POST", "/v1/pnr", strings.NewReader(`{"bench":"rotary_pcr"}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != StatusClientClosedRequest {
		t.Errorf("status = %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body)
	}
}

func TestPNRCancelledMidFlight(t *testing.T) {
	h := newTestServer(2)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel shortly after the anneal starts; the annealer must abort
	// within one move batch, so the request ends long before a full run.
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	r := httptest.NewRequest("POST", "/v1/pnr", strings.NewReader(`{"bench":"planar_synthetic_5"}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancelled request took %v; annealing did not abort promptly", d)
	}
}

func TestRequestTimeout(t *testing.T) {
	h := New(Config{Workers: 1, RequestTimeout: time.Nanosecond}).Handler()
	w := do(t, h, "POST", "/v1/pnr", `{"bench":"rotary_pcr"}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504: %s", w.Code, w.Body)
	}
}

// TestPNRDeterministicAcrossWorkers is the acceptance check: identical
// request bodies yield byte-identical responses at any worker count.
func TestPNRDeterministicAcrossWorkers(t *testing.T) {
	const body = `{"bench":"aquaflex_3b"}`
	var want []byte
	for _, workers := range []int{1, 4} {
		h := newTestServer(workers)
		for rep := 0; rep < 2; rep++ {
			w := do(t, h, "POST", "/v1/pnr", body)
			if w.Code != http.StatusOK {
				t.Fatalf("workers=%d rep=%d: status = %d: %s", workers, rep, w.Code, w.Body)
			}
			if want == nil {
				want = w.Body.Bytes()
			} else if !bytes.Equal(w.Body.Bytes(), want) {
				t.Fatalf("workers=%d rep=%d: response bytes differ", workers, rep)
			}
		}
	}
}

// TestPNRConcurrentHammer drives /v1/pnr from many goroutines at once.
// Run with -race this doubles as the data-race check on the gate, the
// timings accumulator, and the metrics counters; every response must be
// a byte-identical 200. It deliberately does not skip under -short: the
// race suite runs with -short.
func TestPNRConcurrentHammer(t *testing.T) {
	h := newTestServer(4)
	const body = `{"bench":"aquaflex_3b","placer":"greedy"}`
	const goroutines, reps = 8, 3
	bodies := make([][]byte, goroutines*reps)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				w := do(t, h, "POST", "/v1/pnr", body)
				if w.Code != http.StatusOK {
					t.Errorf("goroutine %d rep %d: status %d: %s", g, rep, w.Code, w.Body)
					return
				}
				bodies[g*reps+rep] = w.Body.Bytes()
			}
		}(g)
	}
	wg.Wait()
	for i := 1; i < len(bodies); i++ {
		if bodies[i] == nil {
			continue
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0 under concurrency", i)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	h := newTestServer(2)
	if w := do(t, h, "POST", "/v1/validate", `{"bench":"rotary_pcr"}`); w.Code != http.StatusOK {
		t.Fatalf("validate: %d", w.Code)
	}
	if w := do(t, h, "POST", "/v1/pnr", `{"bench":"aquaflex_3b","placer":"greedy"}`); w.Code != http.StatusOK {
		t.Fatalf("pnr: %d", w.Code)
	}
	if w := do(t, h, "POST", "/v1/validate", `{"bench":"nope"}`); w.Code != http.StatusNotFound {
		t.Fatalf("404 probe: %d", w.Code)
	}
	w := do(t, h, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	text := w.Body.String()
	for _, needle := range []string{
		`parchmint_requests_total{endpoint="validate",status="200"} 1`,
		`parchmint_requests_total{endpoint="validate",status="404"} 1`,
		`parchmint_requests_total{endpoint="pnr",status="200"} 1`,
		`parchmint_errors_total{endpoint="validate"} 1`,
		`parchmint_request_seconds_total{endpoint="pnr"}`,
		`parchmint_stage_seconds_total{task="aquaflex_3b",stage="place"}`,
		`parchmint_stage_seconds_total{task="aquaflex_3b",stage="route"}`,
		`parchmint_workers 2`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("metrics missing %q\n%s", needle, text)
		}
	}
}

func TestExplicitSeedOverridesDerived(t *testing.T) {
	h := newTestServer(1)
	w := do(t, h, "POST", "/v1/pnr", `{"bench":"aquaflex_3b","seed":7,"placer":"greedy"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Seed uint64 `json:"seed"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seed != 7 {
		t.Errorf("seed = %d, want the request's 7", resp.Seed)
	}
}

// TestBenchListEnvelope covers the {items, total} listing envelope, its
// ?prefix= filter, and the deprecated ?format=legacy bare array.
func TestBenchListEnvelope(t *testing.T) {
	h := newTestServer(1)
	w := do(t, h, "GET", "/v1/bench?prefix=planar", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Items []struct {
			Name string `json:"name"`
		} `json:"items"`
		Total int `json:"total"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding listing: %v", err)
	}
	if resp.Total != len(resp.Items) || resp.Total == 0 {
		t.Fatalf("total = %d with %d items", resp.Total, len(resp.Items))
	}
	for _, item := range resp.Items {
		if !strings.HasPrefix(item.Name, "planar") {
			t.Errorf("prefix filter leaked %q", item.Name)
		}
	}
	none := do(t, h, "GET", "/v1/bench?prefix=zzz", "")
	if !strings.Contains(none.Body.String(), `"items":[]`) {
		t.Errorf("empty filter should render an empty items array: %s", none.Body)
	}
	legacy := do(t, h, "GET", "/v1/bench?format=legacy", "")
	var arr []json.RawMessage
	if err := json.Unmarshal(legacy.Body.Bytes(), &arr); err != nil || len(arr) == 0 {
		t.Errorf("legacy format is not a bare array: %v\n%s", err, legacy.Body)
	}
	if bad := do(t, h, "GET", "/v1/bench?format=csv", ""); bad.Code != http.StatusBadRequest {
		t.Errorf("unknown format: status = %d, want 400", bad.Code)
	}
}

// TestErrorEnvelopeFallbackCodes: every non-2xx body carries a stable
// code and the request ID, even when the underlying error defines no
// Code() of its own.
func TestErrorEnvelopeFallbackCodes(t *testing.T) {
	h := newTestServer(1)
	for _, tc := range []struct {
		method, path, body, wantCode string
		wantStatus                   int
	}{
		{"GET", "/v1/bench/no_such_bench", "", "not-found", http.StatusNotFound},
		{"POST", "/v1/stats", `{"bench":"no_such_bench"}`, "not-found", http.StatusNotFound},
		{"POST", "/v1/stats", `{}`, "bad-request", http.StatusBadRequest},
		{"POST", "/v1/stats", `{"bench":"rotary_pcr","text":"V1","format":"mint"}`, "bad-request", http.StatusBadRequest},
	} {
		w := do(t, h, tc.method, tc.path, tc.body)
		if w.Code != tc.wantStatus {
			t.Errorf("%s %s: status = %d, want %d", tc.method, tc.path, w.Code, tc.wantStatus)
			continue
		}
		var eb struct {
			Error     string `json:"error"`
			Code      string `json:"code"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
			t.Errorf("%s %s: body is not the error envelope: %s", tc.method, tc.path, w.Body)
			continue
		}
		if eb.Code != tc.wantCode {
			t.Errorf("%s %s: code = %q, want %q", tc.method, tc.path, eb.Code, tc.wantCode)
		}
		if eb.RequestID != w.Header().Get("X-Request-Id") {
			t.Errorf("%s %s: request_id = %q, header = %q", tc.method, tc.path, eb.RequestID, w.Header().Get("X-Request-Id"))
		}
	}
}
