package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/stats"
)

// The hot-path codec contracts: the hand-rolled envelope decoder and the
// append encoders must be indistinguishable — byte for byte, field for
// field — from the encoding/json paths they replaced, because cache
// addresses, journaled job envelopes, and golden response bodies all
// flow through them.

// envelopeCases are the request bodies both decoders chew through:
// well-formed, hostile, and deliberately weird (duplicate keys, case
// variants, nulls, unknown fields, trailing garbage).
var envelopeCases = []string{
	`{}`,
	`null`,
	``,
	`   `,
	`{"bench":"rotary_pcr"}`,
	`{"BENCH":"rotary_pcr","Seed":7}`,
	`{"bench":"a","bench":"b"}`,
	`{"device":{"name":"d","layers":[]}}`,
	`{"device":null}`,
	`{"device":[1,2,{"x":"y"}]}`,
	`{"text":"v1.1\nDEVICE d\n","format":"mint"}`,
	`{"seed":18446744073709551615}`,
	`{"seed":null,"placer":null,"labels":null,"scale":null}`,
	`{"utilization":0.35,"replicas":4,"scale":2.5,"labels":true}`,
	`{"replicas":-3}`,
	`{"to":"json","unknown":{"deep":[true,null]},"labels":false}`,
	`{"bench":"\u0041\ud83d\ude00<&>"}`,
	"{\"bench\":\"x\"}garbage after",
	`{"bench":"x"}  {"bench":"y"}`,
	`{"seed":1.5}`,
	`{"seed":-1}`,
	`{"labels":"yes"}`,
	`{"bench":42}`,
	`{"bench":"x"`,
	`[1,2,3]`,
	`{"scale":1e-3,"utilization":1e21}`,
	`{"replicas":2147483647}`,
	`{"text":"\u0000\u001f"}`,
}

// stdDecodeRequest is the reference decoding: exactly what decodeRequest
// did before the hand parser, a json.Decoder reading one value.
func stdDecodeRequest(data string, req *request) error {
	return json.NewDecoder(strings.NewReader(data)).Decode(req)
}

func TestParseRequestMatchesStd(t *testing.T) {
	for _, tc := range envelopeCases {
		var want request
		wantErr := stdDecodeRequest(tc, &want)
		var got request
		gotErr := parseRequest([]byte(tc), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("parseRequest(%q) error = %v, std error = %v", tc, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parseRequest(%q) = %+v, std = %+v", tc, got, want)
		}
	}
}

func TestAppendRequestJSONMatchesStd(t *testing.T) {
	reqs := []request{
		{},
		{Bench: "rotary_pcr"},
		{Bench: "a<&>\u2028", Seed: 18446744073709551615, Placer: "anneal", Router: "astar"},
		{Device: json.RawMessage(`{ "name" : "d",
			"layers" : [ 1, "two", null ] }`), Utilization: 0.35},
		{Device: json.RawMessage(`null`)},
		{Text: "v1.1\nDEVICE d\n", Format: "mint", To: "json"},
		{Scale: 2.5, Labels: true, Replicas: -3},
		{Utilization: 1e-7, Scale: 1e21},
	}
	// Every decodable envelope case must round-trip identically too.
	for _, tc := range envelopeCases {
		var req request
		if stdDecodeRequest(tc, &req) == nil {
			reqs = append(reqs, req)
		}
	}
	for _, req := range reqs {
		want, err := json.Marshal(&req)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", req, err)
		}
		got, err := appendRequestJSON(nil, &req)
		if err != nil {
			t.Fatalf("appendRequestJSON(%+v): %v", req, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("appendRequestJSON(%+v):\n got %s\nwant %s", req, got, want)
		}
	}
}

func TestParseBatchRequestMatchesStd(t *testing.T) {
	cases := []string{
		`{}`,
		`null`,
		``,
		`{"items":[]}`,
		`{"items":null}`,
		`{"ITEMS":[{"op":"stats","bench":"rotary_pcr"}]}`,
		`{"items":[{"op":"validate","device":{"k":1}},null,{"seed":9}]}`,
		`{"items":[{"op":"a"}],"items":[{"op":"b"},{"op":"c"}]}`,
		`{"extra":1,"items":[{"op":"pnr","replicas":2,"unknown":[]}]}`,
		`{"items":[{"op":42}]}`,
		`{"items":{"op":"x"}}`,
		`{"items":[`,
	}
	for _, tc := range cases {
		var want batchRequest
		wantErr := json.NewDecoder(strings.NewReader(tc)).Decode(&want)
		var got batchRequest
		gotErr := parseBatchRequest([]byte(tc), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("parseBatchRequest(%q) error = %v, std error = %v", tc, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parseBatchRequest(%q) = %+v, std = %+v", tc, got, want)
		}
	}
}

func TestParseJobSubmitMatchesStd(t *testing.T) {
	cases := []string{
		`{}`,
		`null`,
		`{"op":"stats","bench":"rotary_pcr"}`,
		`{"OP":"pnr","seed":11,"replicas":3}`,
		`{"op":null,"device":{"a":[false]}}`,
		`{"op":"x","op":"y","unknown":1}`,
		`{"op":true}`,
	}
	for _, tc := range cases {
		var want jobSubmitRequest
		wantErr := json.NewDecoder(strings.NewReader(tc)).Decode(&want)
		var got jobSubmitRequest
		gotErr := parseJobSubmit([]byte(tc), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("parseJobSubmit(%q) error = %v, std error = %v", tc, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parseJobSubmit(%q) = %+v, std = %+v", tc, got, want)
		}
	}
}

func TestResponseEncodersMatchStd(t *testing.T) {
	check := func(name string, got []byte, v any) {
		t.Helper()
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: json.Marshal: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s:\n got %s\nwant %s", name, got, want)
		}
	}

	validates := []validateResponse{
		{},
		{Device: "d<&>", OK: true, Diagnostics: []diagDTO{}},
		{Device: "d", Errors: 2, Warnings: 1,
			Diagnostics: []diagDTO{{Severity: "error", Code: "E001", Path: "layers[0]", Message: "bad \"layer\""}},
			Schema:      []string{"a", "b\u2029"}},
	}
	for _, v := range validates {
		check("validateResponse", appendValidateResponse(nil, &v), &v)
	}

	converts := []convertResponse{
		{Target: "mint", Output: "v1.1\nDEVICE d\n", Lossless: true},
		{Target: "json", Device: json.RawMessage(`{"name":"d"}`), Notes: []string{"n1", "n2"}},
		{Target: "json", Device: json.RawMessage(`null`)},
	}
	for _, v := range converts {
		check("convertResponse", appendConvertResponse(nil, &v), &v)
	}

	pnrs := []pnrResponse{
		{},
		{Device: json.RawMessage(`{"name":"d"}`), Seed: 18446744073709551615, Placer: "anneal", Router: "astar",
			Place: placeSummary{HPWL: -5, Area: 1 << 40, Overlaps: 3, Placed: 7},
			Route: routeSummary{Routed: 9, Total: 10, Completion: 0.9, Length: 12345, Expansions: 88, Rounds: 2}},
	}
	for _, v := range pnrs {
		got, err := appendPNRResponse(nil, &v)
		if err != nil {
			t.Fatalf("appendPNRResponse: %v", err)
		}
		check("pnrResponse", got, &v)
	}

	profiles := []stats.Profile{
		{},
		{Name: "aquaflex_3b", Class: "multiplexer", Layers: 3, Components: 40, Connections: 38,
			Ports: 12, Valves: 20, MultiSink: 2, AvgDegree: 1.9, MaxDegree: 5, Diameter: 11},
	}
	for _, v := range profiles {
		got, err := appendStatsProfile(nil, &v)
		if err != nil {
			t.Fatalf("appendStatsProfile: %v", err)
		}
		check("stats.Profile", got, &v)
	}
}

// TestCacheKeyMatchesLegacy pins the single-pass key derivation against
// the formula it replaced: cache.Key over op, json.Marshal(req), the
// resolved seed, and (multi-replica pnr/render only) the replica count.
// Stored entries and journaled job addresses must survive the refactor.
func TestCacheKeyMatchesLegacy(t *testing.T) {
	s := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, Replicas: 3})
	legacy := func(op string, req *request) string {
		canon, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		seed := req.Seed
		if seed == 0 {
			seed = runner.DeriveSeed(s.cfg.BaseSeed, req.Bench)
		}
		var sb [8]byte
		binary.LittleEndian.PutUint64(sb[:], seed)
		if n := s.replicas(req); n > 1 && (op == opPNR || op == opRender) {
			var rb [8]byte
			binary.LittleEndian.PutUint64(rb[:], uint64(n))
			return cache.Key([]byte(op), canon, sb[:], rb[:])
		}
		return cache.Key([]byte(op), canon, sb[:])
	}
	reqs := []request{
		{Bench: "rotary_pcr"},
		{Bench: "rotary_pcr", Seed: 99},
		{Device: json.RawMessage(`{"name":"d"}`), Placer: "anneal", Utilization: 0.4},
		{Text: "v1.1\nDEVICE d\n", Format: "mint", To: "json"},
		{Bench: "aquaflex_3b", Replicas: 1},
		{Bench: "aquaflex_3b", Replicas: 8},
	}
	for _, op := range []string{opValidate, opConvert, opPNR, opStats, opRender} {
		for i := range reqs {
			want := legacy(op, &reqs[i])
			got := s.cacheKey(op, &reqs[i])
			if got != want {
				t.Errorf("cacheKey(%s, %+v) = %s, legacy = %s", op, reqs[i], got, want)
			}
		}
	}
}

// TestGzipByteIdentity pins the compression middleware: decompressing a
// gzip response yields exactly the identity response's bytes, on both a
// JSON endpoint and the SVG renderer, and the SSE stream stays identity.
func TestGzipByteIdentity(t *testing.T) {
	h := newTestServer(2)
	cases := []struct {
		method, path, body string
	}{
		{"GET", "/healthz", ""},
		{"POST", "/v1/stats", `{"bench":"rotary_pcr"}`},
		{"POST", "/v1/validate", `{"bench":"aquaflex_3b"}`},
		{"GET", "/v1/bench?prefix=planar", ""},
	}
	for _, tc := range cases {
		plain := do(t, h, tc.method, tc.path, tc.body)
		if plain.Header().Get("Content-Encoding") != "" {
			t.Fatalf("%s: identity response claims an encoding", tc.path)
		}

		var r *http.Request
		if tc.body == "" {
			r = httptest.NewRequest(tc.method, tc.path, nil)
		} else {
			r = httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
		}
		r.Header.Set("Accept-Encoding", "gzip, deflate")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if got := w.Header().Get("Content-Encoding"); got != "gzip" {
			t.Fatalf("%s: Content-Encoding = %q, want gzip", tc.path, got)
		}
		if got := w.Header().Get("Vary"); got != "Accept-Encoding" {
			t.Errorf("%s: Vary = %q, want Accept-Encoding", tc.path, got)
		}
		zr, err := gzip.NewReader(w.Body)
		if err != nil {
			t.Fatalf("%s: gzip reader: %v", tc.path, err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: decompress: %v", tc.path, err)
		}
		if !bytes.Equal(raw, plain.Body.Bytes()) {
			t.Errorf("%s: decompressed body differs from identity body", tc.path)
		}
	}
}

func TestGzipRefusedQualityZero(t *testing.T) {
	h := newTestServer(2)
	r := httptest.NewRequest("GET", "/healthz", nil)
	r.Header.Set("Accept-Encoding", "gzip;q=0")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if got := w.Header().Get("Content-Encoding"); got != "" {
		t.Errorf("Content-Encoding = %q with q=0, want identity", got)
	}
}

// TestPrettyRestoresIndentedBody pins the ?pretty=1 opt-in: the pretty
// rendering of a compact body is exactly json.MarshalIndent of the same
// value — the bytes every response carried before compact became the
// default.
func TestPrettyRestoresIndentedBody(t *testing.T) {
	h := newTestServer(2)
	paths := []struct {
		method, plain, pretty, body string
	}{
		{"POST", "/v1/stats", "/v1/stats?pretty=1", `{"bench":"rotary_pcr"}`},
		{"POST", "/v1/validate", "/v1/validate?pretty=1", `{"bench":"rotary_pcr"}`},
		{"GET", "/healthz", "/healthz?pretty=1", ""},
		{"GET", "/v1/bench", "/v1/bench?pretty", ""},
		{"GET", "/v1/bench/rotary_pcr", "/v1/bench/rotary_pcr?pretty=true", ""},
	}
	for _, tc := range paths {
		compact := do(t, h, tc.method, tc.plain, tc.body)
		pretty := do(t, h, tc.method, tc.pretty, tc.body)
		if compact.Code != http.StatusOK || pretty.Code != http.StatusOK {
			t.Fatalf("%s: status = %d/%d", tc.plain, compact.Code, pretty.Code)
		}
		var buf bytes.Buffer
		if err := json.Indent(&buf, bytes.TrimRight(compact.Body.Bytes(), "\n"), "", "  "); err != nil {
			t.Fatalf("%s: indent: %v", tc.plain, err)
		}
		buf.WriteByte('\n')
		if !bytes.Equal(pretty.Body.Bytes(), buf.Bytes()) {
			t.Errorf("%s: pretty body is not the indented compact body:\n%s\nvs\n%s",
				tc.pretty, pretty.Body.Bytes(), buf.Bytes())
		}
		// Healthz uptime can tick between the two requests; everything else
		// must be the same document.
		if tc.plain == "/healthz" {
			continue
		}
	}
}

// TestWarmServeAllocs is the allocation guard on the serving hot path: a
// warm-cache request must stay within a pinned allocation budget, so a
// regression that reintroduces per-request garbage fails loudly instead
// of surfacing as a benchmark drift months later.
// allocHarness is the allocation-free request loop the guard measures
// through: a reused request with a resettable body and a discarding
// writer, mirroring the cmd/parchmint-perf serve harness, so the counted
// allocations belong to the serving path rather than test scaffolding.
type allocDiscardWriter struct {
	h      http.Header
	status int
}

func (w *allocDiscardWriter) Header() http.Header         { return w.h }
func (w *allocDiscardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *allocDiscardWriter) WriteHeader(code int)        { w.status = code }

type allocReusableBody struct{ bytes.Reader }

func (*allocReusableBody) Close() error { return nil }

func TestWarmServeAllocs(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	h := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, CacheBytes: 1 << 20}).Handler()
	body := []byte(`{"bench":"rotary_pcr"}`)
	req, err := http.NewRequest("POST", "http://perf.local/v1/validate", nil)
	if err != nil {
		t.Fatal(err)
	}
	rb := &allocReusableBody{}
	w := &allocDiscardWriter{h: make(http.Header)}
	run := func() {
		rb.Reset(body)
		req.Body = rb
		w.status = 0
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status = %d", w.status)
		}
	}
	// Warm the cache, the pools, and the lazily materialized metric cells.
	for range 16 {
		run()
	}
	avg := testing.AllocsPerRun(200, run)
	// The measured warm path sits around 11 allocations: the timeout
	// context machinery, the request ID and its header slice, the root
	// span, the request-context clone, and the cache key string. The
	// ceiling leaves slack for toolchain drift while still failing loudly
	// if per-request decode/encode garbage creeps back in.
	const ceiling = 16
	if avg > ceiling {
		t.Errorf("warm /v1/validate allocates %.1f per request, ceiling %d", avg, ceiling)
	}
}
