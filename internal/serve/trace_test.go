package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/obs"
)

const (
	inboundTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	inboundTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
	inboundSpanID      = "00f067aa0ba902b7"
)

// doHdr is do with extra request headers.
func doHdr(t *testing.T, h http.Handler, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestTraceparentJoinAsChild(t *testing.T) {
	var logBuf bytes.Buffer
	h := New(Config{Workers: 1, Logger: obs.NewLogger("json", &logBuf)}).Handler()
	w := doHdr(t, h, "GET", "/healthz", "", map[string]string{
		"traceparent": inboundTraceparent,
		"tracestate":  "rojo=00f067aa0ba902b7",
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	echoed := w.Header().Get("Traceparent")
	tc, ok := obs.ParseTraceparent(echoed)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echoed)
	}
	if got := tc.TraceIDString(); got != inboundTraceID {
		t.Errorf("trace id = %s, want the inbound %s (join, not restart)", got, inboundTraceID)
	}
	if strings.Contains(echoed, inboundSpanID) {
		t.Errorf("response must carry this hop's span id, not the caller's: %s", echoed)
	}
	if !tc.Sampled() {
		t.Error("sampled flag must propagate")
	}
	if got := w.Header().Get("Tracestate"); got != "rojo=00f067aa0ba902b7" {
		t.Errorf("tracestate = %q, want pass-through", got)
	}
	// The trace id lands in the request log next to the request id.
	var rec struct {
		ID    string `json:"id"`
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &rec); err != nil {
		t.Fatalf("request log: %v\n%s", err, logBuf.String())
	}
	if rec.Trace != inboundTraceID {
		t.Errorf("log trace = %q, want %q", rec.Trace, inboundTraceID)
	}
}

func TestTraceparentMalformedMintsFreshRoot(t *testing.T) {
	h := newTestServer(1)
	for _, bad := range []string{
		"",
		"not-a-traceparent",
		strings.ToUpper(inboundTraceparent),
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"ff" + inboundTraceparent[2:],
	} {
		hdr := map[string]string{}
		if bad != "" {
			hdr["traceparent"] = bad
		}
		w := doHdr(t, h, "GET", "/healthz", "", hdr)
		tc, ok := obs.ParseTraceparent(w.Header().Get("Traceparent"))
		if !ok {
			t.Fatalf("inbound %q: response traceparent %q does not parse", bad, w.Header().Get("Traceparent"))
		}
		if tc.TraceIDString() == inboundTraceID {
			t.Errorf("inbound %q: malformed header was propagated instead of restarted", bad)
		}
		if !tc.Valid() || !tc.Sampled() {
			t.Errorf("inbound %q: fresh root invalid: %+v", bad, tc)
		}
	}
	// Malformed tracestate is dropped, not echoed.
	w := doHdr(t, h, "GET", "/healthz", "", map[string]string{
		"traceparent": inboundTraceparent,
		"tracestate":  "NOT=VALID,",
	})
	if got := w.Header().Get("Tracestate"); got != "" {
		t.Errorf("invalid tracestate echoed: %q", got)
	}
}

func TestErrorBodyCarriesTraceID(t *testing.T) {
	h := newTestServer(1)
	w := doHdr(t, h, "POST", "/v1/pnr", "{not json", map[string]string{
		"traceparent": inboundTraceparent,
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", w.Code)
	}
	var body struct {
		Error     string `json:"error"`
		Code      string `json:"code"`
		RequestID string `json:"request_id"`
		TraceID   string `json:"trace_id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != inboundTraceID {
		t.Errorf("error trace_id = %q, want %q", body.TraceID, inboundTraceID)
	}
	if body.RequestID == "" || body.Code == "" {
		t.Errorf("error envelope incomplete: %+v", body)
	}
}

// Trace context is out-of-band telemetry: the response bytes of a
// deterministic endpoint must not depend on whether the caller sent a
// traceparent.
func TestResponseBytesIndependentOfTraceparent(t *testing.T) {
	h := newTestServer(2)
	without := do(t, h, "POST", "/v1/pnr", `{"bench":"aquaflex_3b"}`)
	with := doHdr(t, h, "POST", "/v1/pnr", `{"bench":"aquaflex_3b"}`, map[string]string{
		"traceparent": inboundTraceparent,
		"tracestate":  "rojo=00f067aa0ba902b7",
	})
	if without.Code != http.StatusOK || with.Code != http.StatusOK {
		t.Fatalf("status = %d / %d", without.Code, with.Code)
	}
	if !bytes.Equal(without.Body.Bytes(), with.Body.Bytes()) {
		t.Error("pnr response bytes changed when a traceparent was supplied")
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	// TraceSample 1 keeps every request, so the test is deterministic.
	h := New(Config{Workers: 1, TraceSample: 1}).Handler()
	if w := doHdr(t, h, "POST", "/v1/stats", `{"bench":"aquaflex_3b"}`, map[string]string{
		"traceparent": inboundTraceparent,
	}); w.Code != http.StatusOK {
		t.Fatalf("stats: %d: %s", w.Code, w.Body)
	}

	w := do(t, h, "GET", "/debug/requests", "")
	if w.Code != http.StatusOK {
		t.Fatalf("list: %d: %s", w.Code, w.Body)
	}
	var list struct {
		Items []struct {
			ID      string `json:"request_id"`
			TraceID string `json:"trace_id"`
			Status  int    `json:"status"`
			Reason  string `json:"reason"`
			Spans   int    `json:"spans"`
			URL     string `json:"url"`
		} `json:"items"`
		Total int    `json:"total"`
		Seen  uint64 `json:"seen"`
		Kept  uint64 `json:"kept"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total < 1 || list.Seen < 1 || list.Kept < 1 {
		t.Fatalf("list counters = %+v", list)
	}
	var statsID string
	for _, it := range list.Items {
		if it.TraceID == inboundTraceID {
			statsID = it.ID
			if it.Reason != "sampled" || it.Status != http.StatusOK || it.Spans == 0 {
				t.Errorf("stats record = %+v", it)
			}
			if it.URL != "/debug/requests/"+it.ID {
				t.Errorf("record url = %q", it.URL)
			}
		}
	}
	if statsID == "" {
		t.Fatalf("stats request (trace %s) missing from %+v", inboundTraceID, list.Items)
	}

	// The detail view has the span tree with the handler's root span.
	w = do(t, h, "GET", "/debug/requests/"+statsID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("detail: %d: %s", w.Code, w.Body)
	}
	var detail struct {
		Traceparent string `json:"traceparent"`
		SpanTree    []struct {
			Name  string `json:"name"`
			DurUS int64  `json:"dur_us"`
		} `json:"span_tree"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail.Traceparent, inboundTraceID) {
		t.Errorf("detail traceparent = %q", detail.Traceparent)
	}
	names := make([]string, len(detail.SpanTree))
	for i, sp := range detail.SpanTree {
		names[i] = sp.Name
	}
	if !containsStr(names, "http.stats") || !containsStr(names, "bench.build") {
		t.Errorf("span tree missing expected spans: %v", names)
	}

	// Debug envelope: bad ?n= and unknown ids use the unified error shape.
	for _, path := range []string{"/debug/requests?n=-1", "/debug/requests?n=zzz", "/debug/trace?n=-1"} {
		w := do(t, h, "GET", path, "")
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, w.Code)
			continue
		}
		checkErrorEnvelope(t, path, w.Body.Bytes(), "bad-request")
	}
	w = do(t, h, "GET", "/debug/requests/no-such-id", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown id: status = %d, want 404", w.Code)
	}
	checkErrorEnvelope(t, "/debug/requests/{id}", w.Body.Bytes(), "not-found")
}

func TestFlightRecorderDisabled(t *testing.T) {
	h := New(Config{Workers: 1, FlightRequests: -1}).Handler()
	for _, path := range []string{"/debug/requests", "/debug/requests/some-id"} {
		w := do(t, h, "GET", path, "")
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 when disabled", path, w.Code)
			continue
		}
		checkErrorEnvelope(t, path, w.Body.Bytes(), "bad-request")
	}
}

// checkErrorEnvelope asserts the unified {error, code, request_id} shape.
func checkErrorEnvelope(t *testing.T, ctx string, body []byte, wantCode string) {
	t.Helper()
	var e struct {
		Error     string `json:"error"`
		Code      string `json:"code"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Errorf("%s: body is not the error envelope: %v\n%s", ctx, err, body)
		return
	}
	if e.Error == "" || e.Code != wantCode || e.RequestID == "" {
		t.Errorf("%s: envelope = %+v, want code %q with error and request_id set", ctx, e, wantCode)
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestMetricsOpenMetricsMode(t *testing.T) {
	h := New(Config{Workers: 1, TraceSample: 1}).Handler()
	if w := doHdr(t, h, "POST", "/v1/stats", `{"bench":"aquaflex_3b"}`, map[string]string{
		"traceparent": inboundTraceparent,
	}); w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}

	om := do(t, h, "GET", "/metrics?openmetrics=1", "")
	if om.Code != http.StatusOK {
		t.Fatalf("openmetrics scrape: %d", om.Code)
	}
	if ct := om.Header().Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := om.Body.String()
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Error("OpenMetrics exposition must end with # EOF")
	}
	if !strings.Contains(body, `# {trace_id="`+inboundTraceID+`"}`) {
		t.Error("latency histogram lost the trace exemplar")
	}
	if !strings.Contains(body, "parchmint_build_info{") ||
		!strings.Contains(body, "parchmint_process_start_time_seconds ") ||
		!strings.Contains(body, "parchmint_go_goroutines ") {
		t.Errorf("build info / start time / runtime series missing:\n%s", body)
	}

	// Accept negotiation selects the same rendering.
	acc := doHdr(t, h, "GET", "/metrics", "", map[string]string{
		"Accept": "application/openmetrics-text; version=1.0.0",
	})
	if !strings.HasSuffix(acc.Body.String(), "# EOF\n") {
		t.Error("Accept-negotiated scrape is not OpenMetrics")
	}

	// The plain Prometheus exposition carries no exemplar annotations and
	// no EOF marker, so existing scrapers see exactly the old format.
	plain := do(t, h, "GET", "/metrics", "")
	if strings.Contains(plain.Body.String(), "# {") || strings.Contains(plain.Body.String(), "# EOF") {
		t.Error("plain exposition leaked OpenMetrics syntax")
	}
	if !strings.Contains(plain.Body.String(), "parchmint_build_info{") {
		t.Error("build info missing from plain exposition")
	}
}

// The job journal's submit record carries the submitting request's
// traceparent, so a job replayed on a later boot still correlates with
// the boot that accepted it.
func TestJobJournalCarriesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := job.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s := New(Config{Workers: 1, BaseSeed: BaseSeedDefault, Journal: j})
	defer s.Close()
	h := s.Handler()
	w := doHdr(t, h, "POST", "/v1/jobs", `{"op":"stats","bench":"aquaflex_3b"}`, map[string]string{
		"traceparent": inboundTraceparent,
	})
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", w.Code, w.Body)
	}
	doc := decodeJobDoc(t, w.Body.Bytes())
	waitJob(t, h, doc.ID)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"trace":"00-`+inboundTraceID)) {
		t.Errorf("journal submit record lost the traceparent:\n%s", data)
	}
}
