package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/job"
)

// jobDoc mirrors the job document fields the tests assert on.
type jobDoc struct {
	ID       string `json:"id"`
	Op       string `json:"op"`
	Status   string `json:"status"`
	CacheKey string `json:"cache_key"`
	Cache    string `json:"cache"`
	Result   *struct {
		URL         string `json:"url"`
		ContentType string `json:"content_type"`
		Bytes       int    `json:"bytes"`
	} `json:"result"`
	Error *struct {
		Error      string `json:"error"`
		Code       string `json:"code"`
		HTTPStatus int    `json:"http_status"`
	} `json:"error"`
}

func decodeJobDoc(t *testing.T, body []byte) jobDoc {
	t.Helper()
	var doc jobDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decoding job document %s: %v", body, err)
	}
	return doc
}

// waitJob polls the status endpoint until the job is terminal.
func waitJob(t *testing.T, h http.Handler, id string) jobDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		w := do(t, h, "GET", "/v1/jobs/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("GET job: status = %d: %s", w.Code, w.Body)
		}
		doc := decodeJobDoc(t, w.Body.Bytes())
		switch doc.Status {
		case "completed", "failed", "canceled":
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %s", id, doc.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobResultMatchesSyncEndpoint pins the async surface's core promise:
// a job runs the same cached execution path as the synchronous endpoint,
// so its result bytes are byte-identical to a direct POST and the two
// share one cache entry.
func TestJobResultMatchesSyncEndpoint(t *testing.T) {
	s := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, CacheBytes: 1 << 20})
	defer s.Close()
	h := s.Handler()

	sync := do(t, h, "POST", "/v1/stats", `{"bench":"rotary_pcr"}`)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync status = %d", sync.Code)
	}

	w := do(t, h, "POST", "/v1/jobs", `{"op":"stats","bench":"rotary_pcr"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", w.Code, w.Body)
	}
	doc := decodeJobDoc(t, w.Body.Bytes())
	if doc.ID == "" || doc.Op != "stats" || doc.CacheKey == "" {
		t.Fatalf("submit document incomplete: %s", w.Body)
	}

	final := waitJob(t, h, doc.ID)
	if final.Status != "completed" {
		t.Fatalf("status = %s: %+v", final.Status, final.Error)
	}
	// The sync request already cached this address, so the job is a hit.
	if final.Cache != "hit" {
		t.Errorf("cache outcome = %q, want hit (sync request warmed the entry)", final.Cache)
	}
	if final.Result == nil || final.Result.URL != "/v1/jobs/"+doc.ID+"/result" {
		t.Fatalf("result location missing: %+v", final.Result)
	}

	res := do(t, h, "GET", final.Result.URL, "")
	if res.Code != http.StatusOK {
		t.Fatalf("result status = %d", res.Code)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Error("job result bytes differ from the synchronous endpoint")
	}
	if got := res.Header().Get(cacheHeader); got != "hit" {
		t.Errorf("%s = %q, want hit", cacheHeader, got)
	}
}

// TestJobSubmitValidation: the job surface shares the operation table's
// validator, so bad envelopes die at submit with the standard error body.
func TestJobSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := s.Handler()
	for _, tc := range []struct {
		name, body, wantCode string
	}{
		{"unknown op", `{"op":"explode","bench":"rotary_pcr"}`, "bad-request"},
		{"no source", `{"op":"stats"}`, "bad-request"},
		{"two sources", `{"op":"stats","bench":"rotary_pcr","text":"x","format":"mint"}`, "bad-request"},
		{"bad placer", `{"op":"pnr","bench":"rotary_pcr","placer":"oracle"}`, "bad-request"},
		{"bad convert target", `{"op":"convert","bench":"rotary_pcr","to":"xml"}`, "bad-request"},
	} {
		w := do(t, h, "POST", "/v1/jobs", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d: %s", tc.name, w.Code, w.Body)
			continue
		}
		var eb struct {
			Code      string `json:"code"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Code != tc.wantCode {
			t.Errorf("%s: body = %s, want code %q", tc.name, w.Body, tc.wantCode)
		}
		if eb.RequestID == "" || eb.RequestID != w.Header().Get("X-Request-Id") {
			t.Errorf("%s: request_id %q does not echo X-Request-Id %q",
				tc.name, eb.RequestID, w.Header().Get("X-Request-Id"))
		}
	}
	// render.svg aliases render on the job surface.
	w := do(t, h, "POST", "/v1/jobs", `{"op":"render.svg","bench":"rotary_pcr"}`)
	if w.Code != http.StatusAccepted {
		t.Errorf("render.svg alias: status = %d: %s", w.Code, w.Body)
	} else {
		doc := decodeJobDoc(t, w.Body.Bytes())
		if doc.Op != "render" {
			t.Errorf("render.svg alias resolves to op %q", doc.Op)
		}
		waitJob(t, h, doc.ID)
	}
}

// TestJobResultConflictAndCancel: an unfinished job answers 409 on its
// result URL; DELETE cancels it and the document reports canceled.
func TestJobResultConflictAndCancel(t *testing.T) {
	s := New(Config{Workers: 1, BaseSeed: BaseSeedDefault})
	defer s.Close()
	h := s.Handler()
	w := do(t, h, "POST", "/v1/jobs", `{"op":"pnr","bench":"planar_synthetic_5"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", w.Code, w.Body)
	}
	doc := decodeJobDoc(t, w.Body.Bytes())

	res := do(t, h, "GET", "/v1/jobs/"+doc.ID+"/result", "")
	if res.Code != http.StatusConflict {
		t.Fatalf("result before completion: status = %d, want 409: %s", res.Code, res.Body)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(res.Body.Bytes(), &eb); err != nil || eb.Code != "conflict" {
		t.Errorf("409 body = %s, want code conflict", res.Body)
	}

	if del := do(t, h, "DELETE", "/v1/jobs/"+doc.ID, ""); del.Code != http.StatusOK {
		t.Fatalf("cancel status = %d", del.Code)
	}
	final := waitJob(t, h, doc.ID)
	if final.Status != "canceled" {
		t.Fatalf("status after DELETE = %s, want canceled", final.Status)
	}
	if unknown := do(t, h, "DELETE", "/v1/jobs/job-none-000000", ""); unknown.Code != http.StatusNotFound {
		t.Errorf("cancel unknown job: status = %d, want 404", unknown.Code)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id, event string
	data      []byte
}

// readSSE parses events off an open stream until fn returns false or the
// stream ends.
func readSSE(r *bufio.Reader, fn func(sseEvent) bool) error {
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.event != "" || len(ev.data) > 0 {
				if !fn(ev) {
					return nil
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			ev.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(line[len("data: "):])
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		}
	}
}

// TestJobEventsStreamToDone consumes a completed job's SSE stream over a
// real connection: status transitions arrive in order, pnr stage events
// ride the existing observer hooks, and the stream ends with the terminal
// done event carrying the result location.
func TestJobEventsStreamToDone(t *testing.T) {
	s := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, CacheBytes: 1 << 20, JobHeartbeat: 20 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"op":"pnr","bench":"rotary_pcr"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	doc := decodeJobDoc(t, body)

	stream, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var types []string
	var done struct {
		Status string `json:"status"`
		Cache  string `json:"cache"`
		Result string `json:"result"`
	}
	err = readSSE(bufio.NewReader(stream.Body), func(ev sseEvent) bool {
		types = append(types, ev.event)
		if ev.event == "done" {
			if err := json.Unmarshal(ev.data, &done); err != nil {
				t.Errorf("done payload %s: %v", ev.data, err)
			}
			return false
		}
		return true
	})
	if err != nil {
		t.Fatalf("stream ended without done event: %v (saw %v)", err, types)
	}
	if types[0] != "status" {
		t.Errorf("first event = %q, want status", types[0])
	}
	stages := 0
	for _, typ := range types {
		if typ == "stage" {
			stages++
		}
	}
	if stages < 2 {
		t.Errorf("saw %d stage events, want >= 2 (place, route): %v", stages, types)
	}
	if done.Status != "completed" || done.Result != "/v1/jobs/"+doc.ID+"/result" {
		t.Errorf("done = %+v", done)
	}

	// Last-Event-ID resumption: reconnecting with the final id yields the
	// tail of the stream (terminal, no replay of earlier events).
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+doc.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(len(types)-1))
	resume, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resume.Body.Close()
	var resumed []string
	_ = readSSE(bufio.NewReader(resume.Body), func(ev sseEvent) bool {
		resumed = append(resumed, ev.event)
		return ev.event != "done"
	})
	if len(resumed) != 1 || resumed[0] != "done" {
		t.Errorf("resumed events = %v, want exactly [done]", resumed)
	}
}

// TestJobSSEDisconnectCancels pins the ownership contract of satellite
// streams: a watcher that goes away mid-run cancels the job, the gate
// slot frees, and the journal records the canceled transition.
func TestJobSSEDisconnectCancels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := job.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s := New(Config{Workers: 1, BaseSeed: BaseSeedDefault, Journal: j, JobHeartbeat: 10 * time.Millisecond})
	defer s.Close()
	h := s.Handler()
	ts := httptest.NewServer(h)
	defer ts.Close()

	// planar_synthetic_5 anneals long enough that the disconnect lands
	// mid-run.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"op":"pnr","bench":"planar_synthetic_5"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	doc := decodeJobDoc(t, body)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+doc.ID+"/events", nil)
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one event to be sure the stream is live, then vanish.
	br := bufio.NewReader(stream.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	stream.Body.Close()

	final := waitJob(t, h, doc.ID)
	if final.Status != "canceled" {
		t.Fatalf("status after disconnect = %s, want canceled", final.Status)
	}
	// The gate slot is released: the solvers observed the cancellation and
	// unwound out of the admission gate.
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gate still holds %d slots after cancellation", s.gate.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	// The canceled transition reached the journal.
	waitForJournal(t, path, `"e":"cancel"`)
}

// waitForJournal polls the journal file until needle appears; appends are
// asynchronous with respect to the HTTP responses that triggered them.
func waitForJournal(t *testing.T, path, needle string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := os.ReadFile(path)
		if err == nil && strings.Contains(string(data), needle) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never recorded %q:\n%s", needle, data)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobJournalReplayByteIdentical is the acceptance scenario: submit a
// pnr job under a journal, capture its bytes, abandon the server without
// shutdown (the in-process stand-in for kill -9 — the journal sees no
// close), boot a fresh server from the same journal, and the replayed job
// serves byte-identical bytes as a durable cache hit.
func TestJobJournalReplayByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := job.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, CacheBytes: 1 << 20, Journal: j})
	h := first.Handler()
	w := do(t, h, "POST", "/v1/jobs", `{"op":"pnr","bench":"rotary_pcr","seed":7}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", w.Code, w.Body)
	}
	doc := decodeJobDoc(t, w.Body.Bytes())
	if waitJob(t, h, doc.ID).Status != "completed" {
		t.Fatal("first-boot job did not complete")
	}
	res := do(t, h, "GET", "/v1/jobs/"+doc.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("first-boot result status = %d", res.Code)
	}
	firstBytes := append([]byte(nil), res.Body.Bytes()...)
	// No Close, no journal close: the process "dies" here.

	j2, err := job.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	second := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, CacheBytes: 1 << 20, Journal: j2})
	defer second.Close()
	h2 := second.Handler()

	got := do(t, h2, "GET", "/v1/jobs/"+doc.ID, "")
	if got.Code != http.StatusOK {
		t.Fatalf("replayed job lookup: status = %d: %s", got.Code, got.Body)
	}
	replayed := decodeJobDoc(t, got.Body.Bytes())
	if replayed.Status != "completed" || replayed.Cache != "hit" {
		t.Fatalf("replayed job = %s/%q, want completed/hit", replayed.Status, replayed.Cache)
	}
	res2 := do(t, h2, "GET", "/v1/jobs/"+doc.ID+"/result", "")
	if res2.Code != http.StatusOK {
		t.Fatalf("replayed result status = %d", res2.Code)
	}
	if !bytes.Equal(res2.Body.Bytes(), firstBytes) {
		t.Error("replayed result bytes differ from the first boot")
	}
	if hdr := res2.Header().Get(cacheHeader); hdr != "hit" {
		t.Errorf("replayed %s = %q, want hit", cacheHeader, hdr)
	}
	// The journaled result re-seeded the content-addressed cache: the
	// synchronous endpoint hits without recomputing.
	sync := do(t, h2, "POST", "/v1/pnr", `{"bench":"rotary_pcr","seed":7}`)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync after replay: status = %d", sync.Code)
	}
	if hdr := sync.Header().Get(cacheHeader); hdr != "hit" {
		t.Errorf("sync after replay: %s = %q, want hit (journal seeds the cache)", cacheHeader, hdr)
	}
	if !bytes.Equal(sync.Body.Bytes(), firstBytes) {
		t.Error("sync bytes after replay differ from the journaled job")
	}
}

// TestJobInterruptedReenqueuedOnBoot: a journal holding a submit with no
// terminal record — a job caught mid-flight by a crash — re-runs
// deterministically on the next boot.
func TestJobInterruptedReenqueuedOnBoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	line := `{"e":"submit","id":"job-dead-000001","op":"stats","envelope":{"bench":"rotary_pcr"}}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := job.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s := New(Config{Workers: 1, BaseSeed: BaseSeedDefault, CacheBytes: 1 << 20, Journal: j})
	defer s.Close()
	h := s.Handler()
	final := waitJob(t, h, "job-dead-000001")
	if final.Status != "completed" {
		t.Fatalf("re-enqueued job = %s: %+v", final.Status, final.Error)
	}
	sync := do(t, h, "POST", "/v1/stats", `{"bench":"rotary_pcr"}`)
	res := do(t, h, "GET", "/v1/jobs/job-dead-000001/result", "")
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Error("re-run job bytes differ from the synchronous endpoint")
	}
}

// TestJobList covers the listing envelope and its status filter.
func TestJobList(t *testing.T) {
	s := New(Config{Workers: 2, BaseSeed: BaseSeedDefault})
	defer s.Close()
	h := s.Handler()
	w := do(t, h, "POST", "/v1/jobs", `{"op":"stats","bench":"rotary_pcr"}`)
	doc := decodeJobDoc(t, w.Body.Bytes())
	waitJob(t, h, doc.ID)

	list := do(t, h, "GET", "/v1/jobs", "")
	var resp struct {
		Items []jobDoc `json:"items"`
		Total int      `json:"total"`
	}
	if err := json.Unmarshal(list.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	if resp.Total != 1 || len(resp.Items) != 1 || resp.Items[0].ID != doc.ID {
		t.Errorf("list = %s", list.Body)
	}
	empty := do(t, h, "GET", "/v1/jobs?status=running", "")
	if err := json.Unmarshal(empty.Body.Bytes(), &resp); err != nil || resp.Total != 0 {
		t.Errorf("filtered list = %s", empty.Body)
	}
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
