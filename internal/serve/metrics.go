package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/job"
	"repro/internal/obs"
)

// The service's instruments live on the shared obs.Registry (newInstruments
// in serve.go): the per-endpoint request counters the hand-rolled exporter
// used to own, a latency histogram over obs.DefLatencyBuckets, and — via
// the recorder the handlers put on every request context — the algorithm
// series the annealer and routers emit at their batch poll points.

// endpointMetrics is the pre-resolved instrument bundle for one endpoint.
// The middleware binds one at wire-up time, so the per-request recording
// path touches metric cells instead of re-resolving label sets (and
// re-formatting the endpoint label) on every request. Only the
// per-status request counter stays lazy: the status is not known until
// the response finishes, and each distinct status pays Itoa exactly once
// per endpoint.
type endpointMetrics struct {
	latency  *obs.CounterCell
	errors   *obs.CounterCell
	shed     *obs.CounterCell
	duration *obs.HistogramCell

	requests *obs.Counter
	endpoint string

	mu       sync.Mutex
	byStatus map[int]*obs.CounterCell
}

// endpointMetrics binds the instrument cells for endpoint.
func (s *Server) endpointMetrics(endpoint string) *endpointMetrics {
	return &endpointMetrics{
		latency:  s.mLatency.Cell(endpoint),
		errors:   s.mErrors.Cell(endpoint),
		shed:     s.mShed.Cell(endpoint),
		duration: s.mDuration.Cell(endpoint),
		requests: s.mRequests,
		endpoint: endpoint,
		byStatus: make(map[int]*obs.CounterCell),
	}
}

// statusCell resolves (once per distinct status) the request-count cell
// for a response status on this endpoint.
func (em *endpointMetrics) statusCell(status int) *obs.CounterCell {
	em.mu.Lock()
	c, ok := em.byStatus[status]
	if !ok {
		c = em.requests.Cell(em.endpoint, strconv.Itoa(status))
		em.byStatus[status] = c
	}
	em.mu.Unlock()
	return c
}

// observe records one finished request into the endpoint instruments.
// traceID, when non-empty, becomes the exemplar of the latency bucket
// the observation lands in — the OpenMetrics exposition's link from a
// histogram bucket to a concrete trace.
func (s *Server) observe(em *endpointMetrics, status int, d time.Duration, traceID string) {
	secs := d.Seconds()
	em.statusCell(status).Inc()
	em.latency.Add(secs)
	if status >= 400 {
		em.errors.Inc()
	}
	if status == http.StatusTooManyRequests {
		em.shed.Inc()
	}
	em.duration.ObserveWithExemplar(secs, traceID)
}

// stageObserver adapts the pnr stage hook to the stage-seconds counter for
// one device task. It is the single sink for stage durations — the flow
// reports each started stage exactly once, including stages aborted by
// cancellation, so the scrape never double-counts. When the context
// carries a job progress sink, each stage also lands in that job's event
// stream (the nil sink no-ops, so the request path pays one lookup).
func (s *Server) stageObserver(ctx context.Context, task string) func(stage string, d time.Duration) {
	prog := job.ProgressFromContext(ctx)
	return func(stage string, d time.Duration) {
		s.mStage.Add(d.Seconds(), task, stage)
		prog.Stage(stage, d)
	}
}

// openMetricsContentType is the OpenMetrics exposition media type the
// negotiated mode answers with.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// wantsOpenMetrics reports whether the scrape opted into the OpenMetrics
// exposition: ?openmetrics=1 (curl-friendly) or an Accept header naming
// the OpenMetrics media type (what a Prometheus server negotiating
// exemplar support sends).
func wantsOpenMetrics(r *http.Request) bool {
	switch r.URL.Query().Get("openmetrics") {
	case "1", "true", "yes":
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

// handleMetrics renders every registered family in the Prometheus text
// exposition format — or, when negotiated, the OpenMetrics format with
// trace-ID exemplars on the latency buckets. Rendering is deterministic
// (registration order, sorted series), so scrapes are stable; no client
// library is involved.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsOpenMetrics(r) {
		w.Header().Set("Content-Type", openMetricsContentType)
		s.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// debugLimit parses the shared ?n= query of the debug endpoints: the
// most-recent-n bound, 0 (absent) meaning everything retained.
func debugLimit(r *http.Request) (int, error) {
	arg := r.URL.Query().Get("n")
	if arg == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(arg)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%w: n must be a non-negative integer", errBadRequest)
	}
	return v, nil
}

// handleTrace serves the tracer's ring buffer as Chrome trace_event JSON:
// GET /debug/trace returns every retained span, ?n= limits to the most
// recent n. Load the body in chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) error {
	n, err := debugLimit(r)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.tracer.WriteJSON(w, n)
	return nil
}
