package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics is the hand-rolled per-endpoint instrument set: request counts
// by status, cumulative latency, and error counts. Pipeline stage timings
// live in the server's runner.Timings and are merged in at render time.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // endpoint -> status -> count
	latency  map[string]time.Duration  // endpoint -> summed wall time
	errors   map[string]uint64         // endpoint -> responses with status >= 400
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]uint64),
		latency:  make(map[string]time.Duration),
		errors:   make(map[string]uint64),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests[endpoint] == nil {
		m.requests[endpoint] = make(map[int]uint64)
	}
	m.requests[endpoint][status]++
	m.latency[endpoint] += d
	if status >= 400 {
		m.errors[endpoint]++
	}
}

// handleMetrics renders the Prometheus text exposition format. Keys are
// sorted so scrapes are stable; no client library is involved.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	m := s.metrics
	m.mu.Lock()
	sb.WriteString("# HELP parchmint_requests_total Requests served, by endpoint and status.\n")
	sb.WriteString("# TYPE parchmint_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		statuses := make([]int, 0, len(m.requests[ep]))
		for st := range m.requests[ep] {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			fmt.Fprintf(&sb, "parchmint_requests_total{endpoint=%q,status=\"%d\"} %d\n", ep, st, m.requests[ep][st])
		}
	}
	sb.WriteString("# HELP parchmint_request_seconds_total Cumulative request wall time, by endpoint.\n")
	sb.WriteString("# TYPE parchmint_request_seconds_total counter\n")
	for _, ep := range sortedKeys(m.latency) {
		fmt.Fprintf(&sb, "parchmint_request_seconds_total{endpoint=%q} %.6f\n", ep, m.latency[ep].Seconds())
	}
	sb.WriteString("# HELP parchmint_errors_total Responses with status >= 400, by endpoint.\n")
	sb.WriteString("# TYPE parchmint_errors_total counter\n")
	for _, ep := range sortedKeys(m.errors) {
		fmt.Fprintf(&sb, "parchmint_errors_total{endpoint=%q} %d\n", ep, m.errors[ep])
	}
	m.mu.Unlock()
	sb.WriteString("# HELP parchmint_stage_seconds_total Cumulative pipeline stage wall time, by device task and stage.\n")
	sb.WriteString("# TYPE parchmint_stage_seconds_total counter\n")
	stages := s.timings.Snapshot()
	for _, task := range sortedKeys(stages) {
		for _, stage := range sortedKeys(stages[task]) {
			fmt.Fprintf(&sb, "parchmint_stage_seconds_total{task=%q,stage=%q} %.6f\n", task, stage, stages[task][stage].Seconds())
		}
	}
	sb.WriteString("# HELP parchmint_workers Admission limit of the pipeline worker gate.\n")
	sb.WriteString("# TYPE parchmint_workers gauge\n")
	fmt.Fprintf(&sb, "parchmint_workers %d\n", s.gate.Workers())
	sb.WriteString("# HELP parchmint_inflight Pipeline computations currently admitted.\n")
	sb.WriteString("# TYPE parchmint_inflight gauge\n")
	fmt.Fprintf(&sb, "parchmint_inflight %d\n", s.gate.InFlight())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
