package serve

import (
	"net/http"
	"strconv"
	"time"
)

// The service's instruments live on the shared obs.Registry (newInstruments
// in serve.go): the per-endpoint request counters the hand-rolled exporter
// used to own, a latency histogram over obs.DefLatencyBuckets, and — via
// the recorder the handlers put on every request context — the algorithm
// series the annealer and routers emit at their batch poll points.

// observe records one finished request into the endpoint instruments.
func (s *Server) observe(endpoint string, status int, d time.Duration) {
	secs := d.Seconds()
	s.mRequests.Inc(endpoint, strconv.Itoa(status))
	s.mLatency.Add(secs, endpoint)
	if status >= 400 {
		s.mErrors.Inc(endpoint)
	}
	if status == http.StatusTooManyRequests {
		s.mShed.Inc(endpoint)
	}
	s.mDuration.Observe(secs, endpoint)
}

// stageObserver adapts the pnr stage hook to the stage-seconds counter for
// one device task. It is the single sink for stage durations — the flow
// reports each started stage exactly once, including stages aborted by
// cancellation, so the scrape never double-counts.
func (s *Server) stageObserver(task string) func(stage string, d time.Duration) {
	return func(stage string, d time.Duration) {
		s.mStage.Add(d.Seconds(), task, stage)
	}
}

// handleMetrics renders every registered family in the Prometheus text
// exposition format. Rendering is deterministic (registration order,
// sorted series), so scrapes are stable; no client library is involved.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleTrace serves the tracer's ring buffer as Chrome trace_event JSON:
// GET /debug/trace returns every retained span, ?n= limits to the most
// recent n. Load the body in chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 0
	if arg := r.URL.Query().Get("n"); arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.tracer.WriteJSON(w, n)
}
