package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/job"
)

// The service's instruments live on the shared obs.Registry (newInstruments
// in serve.go): the per-endpoint request counters the hand-rolled exporter
// used to own, a latency histogram over obs.DefLatencyBuckets, and — via
// the recorder the handlers put on every request context — the algorithm
// series the annealer and routers emit at their batch poll points.

// observe records one finished request into the endpoint instruments.
func (s *Server) observe(endpoint string, status int, d time.Duration) {
	secs := d.Seconds()
	s.mRequests.Inc(endpoint, strconv.Itoa(status))
	s.mLatency.Add(secs, endpoint)
	if status >= 400 {
		s.mErrors.Inc(endpoint)
	}
	if status == http.StatusTooManyRequests {
		s.mShed.Inc(endpoint)
	}
	s.mDuration.Observe(secs, endpoint)
}

// stageObserver adapts the pnr stage hook to the stage-seconds counter for
// one device task. It is the single sink for stage durations — the flow
// reports each started stage exactly once, including stages aborted by
// cancellation, so the scrape never double-counts. When the context
// carries a job progress sink, each stage also lands in that job's event
// stream (the nil sink no-ops, so the request path pays one lookup).
func (s *Server) stageObserver(ctx context.Context, task string) func(stage string, d time.Duration) {
	prog := job.ProgressFromContext(ctx)
	return func(stage string, d time.Duration) {
		s.mStage.Add(d.Seconds(), task, stage)
		prog.Stage(stage, d)
	}
}

// handleMetrics renders every registered family in the Prometheus text
// exposition format. Rendering is deterministic (registration order,
// sorted series), so scrapes are stable; no client library is involved.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleTrace serves the tracer's ring buffer as Chrome trace_event JSON:
// GET /debug/trace returns every retained span, ?n= limits to the most
// recent n. Load the body in chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 0
	if arg := r.URL.Query().Get("n"); arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 0 {
			writeError(r.Context(), w, fmt.Errorf("%w: n must be a non-negative integer", errBadRequest))
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.tracer.WriteJSON(w, n)
}
