package serve

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/place"
	"repro/internal/route"
)

// Operation is one row of the service's dispatch table: the single
// description of a pipeline operation every surface consumes. The
// standalone POST endpoints, the /v1/batch fan-out, and the async job
// store all resolve operations here and validate envelopes with the same
// validator, so an envelope that is malformed on one surface is malformed
// — with the same error text and code — on all of them.
type Operation struct {
	// Name is the canonical operation name: metric endpoint label, batch
	// item "op" value, job "op" value, and the first cache-key component.
	Name string
	// Batchable marks operations whose response body embeds in a JSON
	// batch slot. Render is excluded: SVG is not JSON-embeddable.
	Batchable bool
	// run executes the operation against a validated envelope and
	// materializes the full response entry.
	run func(s *Server, ctx context.Context, req *request) (cache.Entry, error)
}

// operations is the dispatch table, in route order.
var operations = []*Operation{
	{Name: opValidate, Batchable: true, run: (*Server).execValidate},
	{Name: opConvert, Batchable: true, run: (*Server).execConvert},
	{Name: opPNR, Batchable: true, run: (*Server).execPNR},
	{Name: opStats, Batchable: true, run: (*Server).execStats},
	{Name: opRender, Batchable: false, run: (*Server).execRender},
}

// operationIndex resolves names to table rows. "render.svg" — the
// operation's endpoint spelling — aliases "render" so job submissions can
// use either.
var operationIndex = func() map[string]*Operation {
	idx := make(map[string]*Operation, len(operations)+1)
	for _, op := range operations {
		idx[op.Name] = op
	}
	idx["render.svg"] = idx[opRender]
	return idx
}()

// operationByName resolves an operation name from a request surface.
func operationByName(name string) (*Operation, error) {
	if op, ok := operationIndex[name]; ok {
		return op, nil
	}
	return nil, fmt.Errorf("%w: unknown op %q (valid: validate, convert, pnr, stats, render)", errBadRequest, name)
}

// mustOperation resolves a name registered by the server's own routing
// table; a miss is a programming error, not a request error.
func mustOperation(name string) *Operation {
	op, ok := operationIndex[name]
	if !ok {
		panic("serve: unregistered operation " + name)
	}
	return op
}

// validate is the one envelope validator. It enforces the invariants the
// envelope documents — exactly one device source, a parseable text
// format, per-operation option domains — before any computation (or job
// submission) is admitted, so every surface rejects a bad envelope the
// same way. Device-content errors (parse failures, semantic invalidity)
// are not its concern; those surface from execution with their own codes.
func (op *Operation) validate(req *request) error {
	sources := 0
	if req.Bench != "" {
		sources++
	}
	if len(req.Device) > 0 {
		sources++
	}
	if req.Text != "" {
		sources++
	}
	switch {
	case sources == 0:
		return fmt.Errorf("%w: one of bench, device, or text is required", errBadRequest)
	case sources > 1:
		return fmt.Errorf("%w: bench, device, and text are mutually exclusive; give exactly one", errBadRequest)
	}
	if req.Text != "" {
		if f := cli.Format(req.Format); f != cli.FormatJSON && f != cli.FormatMINT {
			return fmt.Errorf("%w: text requires format \"json\" or \"mint\", got %q", errBadRequest, req.Format)
		}
	}
	switch op.Name {
	case opConvert:
		if req.To != "" && req.To != "mint" && req.To != "json" {
			return fmt.Errorf("%w: to must be \"mint\" or \"json\", got %q", errBadRequest, req.To)
		}
	case opPNR:
		if _, err := place.EngineByName(req.Placer); err != nil {
			return fmt.Errorf("%w: %v", errBadRequest, err)
		}
		if _, err := route.EngineByName(req.Router); err != nil {
			return fmt.Errorf("%w: %v", errBadRequest, err)
		}
	}
	return nil
}
