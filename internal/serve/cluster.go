package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/cluster"
)

// The multi-node front door. With -peers/-self configured, every pipeline
// request and job submission is sharded by its content address: the
// consistent-hash ring names an owner, a request arriving at a non-owner
// takes exactly one forwarding hop (the forwarded header is the loop
// guard), and a node computing a cache miss first asks the owner whether
// it already holds the bytes. All of it is correct because results are
// pure functions of cache.Key — a peer's bytes are indistinguishable from
// locally recomputed ones — so clustering changes where work happens,
// never what the client receives. Without peers the server never consults
// the ring and its responses are byte-identical to the single-node build.

// forwardable reports whether this request should take its one allowed
// hop to owner: we are not the owner, and the request has not already
// been forwarded (a forwarded request is served where it lands, even if
// the health view shifted mid-flight — that is the loop guard).
func (s *Server) forwardable(r *http.Request, owner string) bool {
	if owner == s.cluster.Self() {
		return false
	}
	return len(r.Header[cluster.ForwardedHeader]) == 0
}

// relayHeaders are the response headers a forwarding hop copies from the
// peer's answer: the body's type, the cache outcome the owner observed,
// and backpressure guidance. Identity headers (X-Request-Id, Traceparent)
// are deliberately not copied — the client correlates with the node it
// spoke to, and the trace ID is shared across the hop anyway.
var relayHeaders = []string{"Content-Type", cacheHeader, "Retry-After"}

// relayResponse copies a peer's response — status, relay headers, body —
// to the client, stamping the forwarded header with this node's name so
// clients (and the smoke test) can see the hop.
func (s *Server) relayResponse(w http.ResponseWriter, resp *http.Response) {
	h := w.Header()
	for _, name := range relayHeaders {
		if vs := resp.Header[name]; len(vs) > 0 {
			h[name] = vs
		}
	}
	h[cluster.ForwardedHeader] = []string{s.cluster.Self()}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// forwardTo relays the request body to owner and streams the peer's
// response back. False means the hop failed at the transport level (after
// the client's retry budget): the caller serves locally — determinism
// makes that fallback safe, just a cache miss on the wrong node.
func (s *Server) forwardTo(w http.ResponseWriter, r *http.Request, owner, contentType string, body []byte) bool {
	resp, err := s.cluster.Forward(r.Context(), owner, r.Method, r.URL.Path, r.URL.RawQuery, contentType, body)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	s.relayResponse(w, resp)
	return true
}

// peerJobRelay resolves a job ID the local store does not know by asking
// each healthy peer in turn — job IDs are node-local, so a job submitted
// through one node (or forwarded to the key's owner) lives in exactly one
// store. A 404 from a peer means "not mine, keep looking"; any other
// answer is the owning node's and is relayed as-is. Returns false when no
// peer knows the job (the caller's local 404 stands).
func (s *Server) peerJobRelay(w http.ResponseWriter, r *http.Request) bool {
	if s.cluster == nil || len(r.Header[cluster.ForwardedHeader]) > 0 {
		return false
	}
	for _, peer := range s.cluster.Others() {
		if !s.cluster.Healthy(peer) {
			continue
		}
		resp, err := s.cluster.Forward(r.Context(), peer, r.Method, r.URL.Path, r.URL.RawQuery, "", nil)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		s.relayResponse(w, resp)
		resp.Body.Close()
		return true
	}
	return false
}

// handlePeerCache answers a peer's cache probe: the stored entry's bytes
// with their content type, or 404. Strictly Lookup-only — a probe must
// never trigger computation, or a miss would fan out work instead of
// concentrating it on the owner.
func (s *Server) handlePeerCache(w http.ResponseWriter, r *http.Request) error {
	key := r.PathValue("key")
	if s.cache == nil {
		return fmt.Errorf("%w: caching disabled on this node", errNotFound)
	}
	ent, ok := s.cache.Lookup(key)
	if !ok {
		return fmt.Errorf("%w: no cache entry for %s", errNotFound, key)
	}
	h := w.Header()
	h["Content-Type"] = contentTypeValue(ent.ContentType)
	w.WriteHeader(http.StatusOK)
	_, err := w.Write(ent.Body)
	return err
}

// shardResponse reports where a request's content address lives: the raw
// ring owner, the health-adjusted route (they differ only while the owner
// is down), and the answering node.
type shardResponse struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
	Route string `json:"route"`
	Self  string `json:"self"`
}

// handleShard computes a request's cache key and shard assignment without
// computing the result — the cluster's addressing oracle, used by the
// smoke test to find (and then deliberately avoid) a key's owner.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) error {
	body, err := requestBody(r)
	if err != nil {
		return badBody("request body", err)
	}
	var jreq jobSubmitRequest
	if err := parseJobSubmit(body, &jreq); err != nil {
		return badBody("request body", err)
	}
	op, err := operationByName(jreq.Op)
	if err != nil {
		return err
	}
	if err := op.validate(&jreq.request); err != nil {
		return err
	}
	key := s.cacheKey(op.Name, &jreq.request)
	return writeJSON(w, r, http.StatusOK, shardResponse{
		Key:   key,
		Owner: s.cluster.Owner(key),
		Route: s.cluster.Route(key),
		Self:  s.cluster.Self(),
	})
}

// jobSubmitBody rebuilds a canonical POST /v1/jobs body — the "op" member
// spliced ahead of the canonical envelope's fields — for the forwarding
// hop. Reconstructing from the decoded request (rather than replaying the
// client's raw bytes) keeps the forwarded body canonical, so the owner
// derives the same cache key this node did.
func jobSubmitBody(op string, envelope []byte) []byte {
	b := make([]byte, 0, len(envelope)+len(op)+10)
	b = append(b, `{"op":`...)
	b = strconv.AppendQuote(b, op)
	if len(envelope) > 2 {
		b = append(b, ',')
		b = append(b, envelope[1:]...)
	} else {
		b = append(b, '}')
	}
	return b
}
