package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runner"
)

// The serving hot path's request-side codec. Decoding runs the shared
// core.Parser over the whole body in one pass (pooled scratch, interned
// small strings); encoding replays the decoded envelope into canonical
// bytes with the core append encoders. Both halves are pinned
// byte-for-byte against encoding/json by TestParseRequestMatchesStd and
// TestAppendRequestJSONMatchesStd, which is what keeps cache keys and
// journaled job envelopes identical to the reflection-based path they
// replaced.

// reqState is the per-request scratch a wrapped endpoint owns: the
// status-capturing writer, the decoded envelope, the body buffer, and the
// telemetry value carrier — pooled together so the warm path allocates
// none of them.
type reqState struct {
	sw   statusWriter
	req  request
	body []byte
	vals obs.RequestValues
	ctx  reqContext
	lim  limitedBody
	// fl collects the request's finished spans for the flight recorder;
	// armed per request, disarmed at pool release so a straggling span
	// cannot write into a buffer the next request owns.
	fl   obs.FlightBuf
	self any // this state boxed once, answered under reqStateKey
}

// maxPooledBody caps the body capacity a pooled state retains, so one
// near-limit request cannot pin megabytes in every pool slot.
const maxPooledBody = 1 << 20

var reqStatePool = sync.Pool{New: func() any {
	st := &reqState{}
	st.self = st
	return st
}}

func getReqState() *reqState { return reqStatePool.Get().(*reqState) }

func putReqState(st *reqState) {
	st.sw = statusWriter{}
	st.req = request{}
	st.vals.Reset()
	st.ctx = reqContext{}
	st.lim = limitedBody{}
	st.fl.Disarm()
	if cap(st.body) > maxPooledBody {
		st.body = nil
	} else {
		st.body = st.body[:0]
	}
	reqStatePool.Put(st)
}

// limitedBody enforces the request body limit with http.MaxBytesReader's
// observable behavior — up to limit bytes pass through, going past it
// yields a sticky *http.MaxBytesError — from a pooled slot in the
// request state instead of a per-request allocation.
type limitedBody struct {
	rc     io.ReadCloser
	remain int64
	limit  int64
	err    error
}

func (l *limitedBody) Read(p []byte) (int, error) {
	if l.err != nil {
		return 0, l.err
	}
	// Read one byte past the budget so an exactly-limit body still sees
	// its normal EOF rather than a spurious limit error.
	if int64(len(p)) > l.remain+1 {
		p = p[:l.remain+1]
	}
	n, err := l.rc.Read(p)
	if int64(n) > l.remain {
		n = int(l.remain)
		l.remain = 0
		l.err = &http.MaxBytesError{Limit: l.limit}
		return n, l.err
	}
	l.remain -= int64(n)
	return n, err
}

func (l *limitedBody) Close() error { return l.rc.Close() }

// reqStateKey fetches the request's reqState from its context; the
// zero-size key boxes for free.
type reqStateKey struct{}

// reqContext is the request's combined context layer: one link that
// answers the recorder, request ID, root span, CPU budget, and request
// state directly, replacing the chain of four WithValue wrappers (and
// their four allocations) the middleware used to build. Everything else
// defers to the parent.
type reqContext struct {
	parent context.Context
	vals   *obs.RequestValues
	budget any // the server's *runner.Budget, boxed once at construction
	state  any // the owning *reqState, boxed once at pool insert
}

func (c *reqContext) Deadline() (deadline time.Time, ok bool) { return c.parent.Deadline() }
func (c *reqContext) Done() <-chan struct{}                   { return c.parent.Done() }
func (c *reqContext) Err() error                              { return c.parent.Err() }

func (c *reqContext) Value(key any) any {
	if v, ok := c.vals.ValueFor(key); ok {
		return v
	}
	if runner.IsBudgetKey(key) {
		return c.budget
	}
	if _, ok := key.(reqStateKey); ok {
		return c.state
	}
	return c.parent.Value(key)
}

// stateFrom returns the request's pooled state, or nil when the handler
// runs outside the service middleware (direct handler tests).
func stateFrom(r *http.Request) *reqState {
	st, _ := r.Context().Value(reqStateKey{}).(*reqState)
	return st
}

// requestBody reads the whole body into the request state's pooled
// buffer (a fresh buffer when unwrapped). The returned slice — and any
// envelope fields aliasing it — is valid until the request completes.
// Reading to EOF up front is what makes the single-pass key/body
// pipeline possible; the one observable difference from the streaming
// decoder it replaced is that trailing bytes beyond the first JSON value
// now count against MaxBodyBytes.
func requestBody(r *http.Request) ([]byte, error) {
	var buf []byte
	st := stateFrom(r)
	if st != nil {
		buf = st.body[:0]
	} else {
		buf = make([]byte, 0, 512)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if st != nil {
			st.body = buf
		}
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// badBody classifies a body-read or parse failure: MaxBytesError passes
// through (it maps to 413), everything else becomes a 400 with the
// surface's wording.
func badBody(surface string, err error) error {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return err
	}
	return fmt.Errorf("%w: decoding %s: %v", errBadRequest, surface, err)
}

// parseRequest decodes the shared envelope from data with the semantics
// of json.Decoder.Decode into a zero request: case-folded key match,
// last duplicate wins, null field values ignored (null device captures
// the literal, as json.RawMessage does), unknown fields skipped, content
// after the first top-level value ignored.
func parseRequest(data []byte, req *request) error {
	p := core.NewParser(data)
	defer p.Release()
	if p.AtEOF() {
		return io.EOF
	}
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := applyRequestField(p, key, req); err != nil {
			return err
		}
	}
}

// applyRequestField decodes one envelope member, shared by the
// standalone endpoints, batch items, and job submissions (whose "op"
// member each wrapper handles before delegating here). Unknown keys are
// skipped, as encoding/json does.
func applyRequestField(p *core.Parser, key []byte, req *request) error {
	switch {
	case core.FoldEq(key, "BENCH"):
		return envString(p, &req.Bench)
	case core.FoldEq(key, "DEVICE"):
		raw, err := p.RawValue()
		if err != nil {
			return err
		}
		req.Device = raw
	case core.FoldEq(key, "TEXT"):
		return envString(p, &req.Text)
	case core.FoldEq(key, "FORMAT"):
		return envString(p, &req.Format)
	case core.FoldEq(key, "SEED"):
		if p.TryNull() {
			return nil
		}
		v, err := p.ReadUint64()
		if err != nil {
			return err
		}
		req.Seed = v
	case core.FoldEq(key, "PLACER"):
		return envString(p, &req.Placer)
	case core.FoldEq(key, "ROUTER"):
		return envString(p, &req.Router)
	case core.FoldEq(key, "UTILIZATION"):
		return envFloat(p, &req.Utilization)
	case core.FoldEq(key, "REPLICAS"):
		if p.TryNull() {
			return nil
		}
		v, err := p.ReadInt64()
		if err != nil {
			return err
		}
		req.Replicas = int(v)
	case core.FoldEq(key, "TO"):
		return envString(p, &req.To)
	case core.FoldEq(key, "SCALE"):
		return envFloat(p, &req.Scale)
	case core.FoldEq(key, "LABELS"):
		if p.TryNull() {
			return nil
		}
		v, err := p.ReadBool()
		if err != nil {
			return err
		}
		req.Labels = v
	default:
		return p.SkipValue()
	}
	return nil
}

func envString(p *core.Parser, dst *string) error {
	if p.TryNull() {
		return nil
	}
	s, err := p.ReadString()
	if err != nil {
		return err
	}
	*dst = s
	return nil
}

func envFloat(p *core.Parser, dst *float64) error {
	if p.TryNull() {
		return nil
	}
	v, err := p.ReadFloat64()
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

// appendRequestJSON appends the canonical envelope — exactly the bytes
// json.Marshal(req) produces — to dst. It is the single source of the
// cache-key body component and the job journal's replay unit, so it must
// never drift from the reflective encoding (TestAppendRequestJSONMatchesStd).
// The error path is unreachable for parser-produced envelopes (JSON
// cannot carry non-finite floats); it exists for hand-built requests.
func appendRequestJSON(dst []byte, req *request) ([]byte, error) {
	var err error
	dst = append(dst, '{')
	n := len(dst)
	comma := func(b []byte) []byte {
		if len(b) > n {
			return append(b, ',')
		}
		return b
	}
	if req.Bench != "" {
		dst = append(dst, `"bench":`...)
		dst = core.AppendJSONString(dst, req.Bench)
	}
	if len(req.Device) > 0 {
		dst = append(comma(dst), `"device":`...)
		dst = core.AppendCompactJSON(dst, req.Device)
	}
	if req.Text != "" {
		dst = append(comma(dst), `"text":`...)
		dst = core.AppendJSONString(dst, req.Text)
	}
	if req.Format != "" {
		dst = append(comma(dst), `"format":`...)
		dst = core.AppendJSONString(dst, req.Format)
	}
	if req.Seed != 0 {
		dst = append(comma(dst), `"seed":`...)
		dst = strconv.AppendUint(dst, req.Seed, 10)
	}
	if req.Placer != "" {
		dst = append(comma(dst), `"placer":`...)
		dst = core.AppendJSONString(dst, req.Placer)
	}
	if req.Router != "" {
		dst = append(comma(dst), `"router":`...)
		dst = core.AppendJSONString(dst, req.Router)
	}
	if req.Utilization != 0 {
		dst = append(comma(dst), `"utilization":`...)
		dst, err = core.AppendJSONFloat(dst, req.Utilization)
		if err != nil {
			return nil, err
		}
	}
	if req.Replicas != 0 {
		dst = append(comma(dst), `"replicas":`...)
		dst = strconv.AppendInt(dst, int64(req.Replicas), 10)
	}
	if req.To != "" {
		dst = append(comma(dst), `"to":`...)
		dst = core.AppendJSONString(dst, req.To)
	}
	if req.Scale != 0 {
		dst = append(comma(dst), `"scale":`...)
		dst, err = core.AppendJSONFloat(dst, req.Scale)
		if err != nil {
			return nil, err
		}
	}
	if req.Labels {
		dst = append(comma(dst), `"labels":true`...)
	}
	return append(dst, '}'), nil
}

// keyScratch holds the two buffers cacheKey reuses: the canonical
// envelope and the length-framed hash input. Its own pool (rather than
// the reqState) because batch items compute keys concurrently under one
// request.
type keyScratch struct {
	env   []byte
	frame []byte
}

var keyScratchPool = sync.Pool{New: func() any { return &keyScratch{} }}

// cacheKey derives the content address of one computation: SHA-256 over
// the operation, the canonicalized request body, and the resolved seed.
// Canonicalization replays the decoded envelope through
// appendRequestJSON, so formatting differences and unknown fields —
// which cannot influence the output — map to the same address, while
// every field that does influence it (device source bytes, engine
// options, render options) is covered. The seed component folds the
// explicit request seed or, for derived seeds, the server's base seed
// (the device name completing the derivation is already pinned by the
// canonical body), so servers seeded differently never share entries.
// The whole derivation is a single pass over pooled buffers; its only
// allocation is the returned key string.
func (s *Server) cacheKey(op string, req *request) string {
	ks := keyScratchPool.Get().(*keyScratch)
	defer keyScratchPool.Put(ks)
	env, err := appendRequestJSON(ks.env[:0], req)
	if err != nil {
		// The envelope round-trips by construction; treat failure as a
		// never-matching key rather than a request failure.
		env = fmt.Appendf(env[:0], "unmarshalable:%p", req)
	}
	ks.env = env
	seed := req.Seed
	if seed == 0 {
		seed = runner.DeriveSeed(s.cfg.BaseSeed, req.Bench)
	}
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seed)
	frame := cache.AppendPartString(ks.frame[:0], op)
	frame = cache.AppendPart(frame, env)
	frame = cache.AppendPart(frame, sb[:])
	// The replica count selects a different annealing search, so for the
	// operations it reaches it must be part of the address. It folds in
	// only when a multi-replica schedule is effective: single-replica
	// keys stay byte-for-byte what they were before the knob existed, so
	// existing entries (and servers that never set it) are undisturbed.
	// RouteWorkers, by contrast, never appears in any key: parallel
	// routing is byte-identical to sequential.
	if n := s.replicas(req); n > 1 && (op == opPNR || op == opRender) {
		var rb [8]byte
		binary.LittleEndian.PutUint64(rb[:], uint64(n))
		frame = cache.AppendPart(frame, rb[:])
	}
	ks.frame = frame
	return cache.KeyFrom(frame)
}
