package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

func decodeBatch(t *testing.T, body []byte) batchResponse {
	t.Helper()
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, body)
	}
	return resp
}

// TestBatchMixedOps: a batch is a 200 envelope whose items carry their
// own standalone statuses — successes and failures side by side, in
// request order.
func TestBatchMixedOps(t *testing.T) {
	h := newTestServer(2)
	w := do(t, h, "POST", "/v1/batch", `{"items":[
		{"op":"stats","bench":"rotary_pcr"},
		{"op":"validate","bench":"aquaflex_3b"},
		{"op":"stats","bench":"no_such_bench"},
		{"op":"render","bench":"rotary_pcr"}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200: %s", w.Code, w.Body)
	}
	resp := decodeBatch(t, w.Body.Bytes())
	if len(resp.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(resp.Items))
	}
	wantStatus := []int{200, 200, 404, 400}
	for i, item := range resp.Items {
		if item.Status != wantStatus[i] {
			t.Errorf("item %d: status = %d (%v), want %d", i, item.Status, item.Error, wantStatus[i])
		}
		if item.Status == http.StatusOK && (len(item.Body) == 0 || item.Error != nil) {
			t.Errorf("item %d: ok item should carry a body and no error", i)
		}
		if item.Status != http.StatusOK && (len(item.Body) != 0 || item.Error == nil) {
			t.Errorf("item %d: failed item should carry an error and no body", i)
		}
	}
	var stats struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(resp.Items[0].Body, &stats); err != nil || stats.Name != "rotary_pcr" {
		t.Errorf("item 0 body = %s (err %v), want rotary_pcr profile", resp.Items[0].Body, err)
	}
	if !strings.Contains(resp.Items[3].Error.Error, "op") {
		t.Errorf("render rejection should name the op field: %+v", resp.Items[3].Error)
	}
}

// TestBatchMatchesSingleEndpointAndSharesCache: a batch item computes
// exactly what its standalone endpoint computes, and both draw on the
// same result cache — a single request warms the batch and vice versa.
func TestBatchMatchesSingleEndpointAndSharesCache(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 2})
	single := do(t, h, "POST", "/v1/pnr", `{"bench":"rotary_pcr","seed":7}`)
	if single.Code != http.StatusOK {
		t.Fatalf("single: status = %d: %s", single.Code, single.Body)
	}
	const batchBody = `{"items":[{"op":"pnr","bench":"rotary_pcr","seed":7}]}`
	first := do(t, h, "POST", "/v1/batch", batchBody)
	if first.Code != http.StatusOK {
		t.Fatalf("batch: status = %d: %s", first.Code, first.Body)
	}
	item := decodeBatch(t, first.Body.Bytes()).Items[0]
	if item.Cache != "hit" {
		t.Errorf("batch item cache = %q, want hit from the single request", item.Cache)
	}
	// json.Marshal re-compacts the cached RawMessage, so compare the
	// decoded values, not the bytes.
	var fromSingle, fromBatch any
	if err := json.Unmarshal(single.Body.Bytes(), &fromSingle); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(item.Body, &fromBatch); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSingle, fromBatch) {
		t.Error("batch item result differs from the standalone endpoint result")
	}
	// Identical batches are byte-identical responses — the determinism
	// contract carries through the fan-out.
	second := do(t, h, "POST", "/v1/batch", batchBody)
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("identical batches produced different bytes")
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 shared computation", st.Misses)
	}
}

// TestBatchIdenticalItemsCoalesce: duplicates inside one batch fold onto
// a single computation via the cache's singleflight.
func TestBatchIdenticalItemsCoalesce(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 4})
	items := make([]string, 8)
	for i := range items {
		items[i] = `{"op":"stats","bench":"rotary_pcr"}`
	}
	w := do(t, h, "POST", "/v1/batch", `{"items":[`+strings.Join(items, ",")+`]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	resp := decodeBatch(t, w.Body.Bytes())
	for i, item := range resp.Items {
		if item.Status != http.StatusOK {
			t.Errorf("item %d: status = %d", i, item.Status)
		}
		if !bytes.Equal(item.Body, resp.Items[0].Body) {
			t.Errorf("item %d body differs", i)
		}
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 for %d identical items", st.Misses, len(items))
	}
}

// TestBatchEnvelopeValidation: malformed envelopes fail the whole batch.
func TestBatchEnvelopeValidation(t *testing.T) {
	h := newTestServer(1)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"malformed JSON", `{"items":`, http.StatusBadRequest},
		{"empty batch", `{"items":[]}`, http.StatusBadRequest},
		{"too many items", oversizeBatch(), http.StatusBadRequest},
	} {
		if w := do(t, h, "POST", "/v1/batch", tc.body); w.Code != tc.status {
			t.Errorf("%s: status = %d, want %d: %s", tc.name, w.Code, tc.status, w.Body)
		}
	}
}

func oversizeBatch() string {
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"op":"stats","bench":"rotary_pcr"}`)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// TestBatchShedItemCarriesRetryHint: a shed batch item mirrors the 429
// surface of a standalone request — the "overloaded" code plus the retry
// hint in the body, since batch slots have no Retry-After header to ride.
func TestBatchShedItemCarriesRetryHint(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 1, QueueDepth: 1})
	defer saturate(t, s, 1)()
	w := do(t, h, "POST", "/v1/batch", `{"items":[{"op":"pnr","bench":"rotary_pcr"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", w.Code, w.Body)
	}
	item := decodeBatch(t, w.Body.Bytes()).Items[0]
	if item.Status != http.StatusTooManyRequests || item.Error == nil {
		t.Fatalf("item = %+v, want shed 429 with error body", item)
	}
	if item.Error.Code != "overloaded" {
		t.Errorf("item code = %q, want overloaded", item.Error.Code)
	}
	if item.Error.RetryAfterMS < 1000 {
		t.Errorf("retry_after_ms = %d, want >= 1000 (the Retry-After floor)", item.Error.RetryAfterMS)
	}
	if item.Error.RequestID == "" {
		t.Error("shed item carries no request_id")
	}
}
