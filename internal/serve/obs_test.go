package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestHealthzBuildInfoAndUptime(t *testing.T) {
	h := newTestServer(2)
	w := do(t, h, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp struct {
		Status        string `json:"status"`
		Workers       int    `json:"workers"`
		GoVersion     string `json:"go_version"`
		UptimeSeconds int64  `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Workers != 2 {
		t.Errorf("healthz = %+v", resp)
	}
	if !strings.HasPrefix(resp.GoVersion, "go") {
		t.Errorf("go_version = %q, want a goN.NN string", resp.GoVersion)
	}
	if resp.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %d, want >= 0", resp.UptimeSeconds)
	}
	// serve-smoke greps the rendered body for this exact fragment.
	if !strings.Contains(w.Body.String(), `"status":"ok"`) {
		t.Errorf("body lost the \"status\":\"ok\" rendering:\n%s", w.Body)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	h := newTestServer(2)
	// One full pnr request under the default engines (anneal + A*) so the
	// whole span tree — handler, loader, flow stages — lands in the ring.
	if w := do(t, h, "POST", "/v1/pnr", `{"bench":"aquaflex_3b"}`); w.Code != http.StatusOK {
		t.Fatalf("pnr: %d: %s", w.Code, w.Body)
	}
	w := do(t, h, "GET", "/debug/trace", "")
	if w.Code != http.StatusOK {
		t.Fatalf("trace: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	err := obs.CheckTrace(w.Body.Bytes(),
		"http.pnr", "bench.build", "pnr.flow", "place.anneal", "route.astar", "pnr.attach")
	if err != nil {
		t.Errorf("trace body: %v", err)
	}

	// ?n= limits to the most recent events.
	w = do(t, h, "GET", "/debug/trace?n=1", "")
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Errorf("?n=1 returned %d events", len(doc.TraceEvents))
	}
	if w := do(t, h, "GET", "/debug/trace?n=-1", ""); w.Code != http.StatusBadRequest {
		t.Errorf("negative n: status = %d, want 400", w.Code)
	}
	if w := do(t, h, "GET", "/debug/trace?n=xyz", ""); w.Code != http.StatusBadRequest {
		t.Errorf("non-numeric n: status = %d, want 400", w.Code)
	}
}

func TestAlgorithmMetricsExposition(t *testing.T) {
	h := newTestServer(2)
	if w := do(t, h, "POST", "/v1/pnr", `{"bench":"aquaflex_3b"}`); w.Code != http.StatusOK {
		t.Fatalf("pnr: %d: %s", w.Code, w.Body)
	}
	text := do(t, h, "GET", "/metrics", "").Body.String()
	for _, needle := range []string{
		"parchmint_anneal_temperature",
		"parchmint_anneal_accept_ratio",
		"parchmint_anneal_moves_total",
		"parchmint_anneal_accepted_total",
		`parchmint_route_expansions_total{engine="astar"}`,
		`parchmint_route_pushes_total{engine="astar"}`,
		`parchmint_request_duration_seconds_bucket{endpoint="pnr",le="+Inf"} 1`,
		`parchmint_request_duration_seconds_count{endpoint="pnr"} 1`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("metrics missing %q\n%s", needle, text)
		}
	}
	// The anneal ran, so the move counter must be a positive series, not
	// just a declared family.
	if strings.Contains(text, "parchmint_anneal_moves_total 0\n") {
		t.Errorf("anneal moves stayed zero after an anneal run:\n%s", text)
	}
}

// TestCancelledRequestStageAccounting pins the exactly-once contract on
// the cancellation path: a request cancelled mid-place reports the partial
// place duration once and nothing for the stages never reached.
func TestCancelledRequestStageAccounting(t *testing.T) {
	h := newTestServer(2)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	r := httptest.NewRequest("POST", "/v1/pnr", strings.NewReader(`{"bench":"planar_synthetic_5"}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body)
	}
	text := do(t, h, "GET", "/metrics", "").Body.String()
	place := `parchmint_stage_seconds_total{task="planar_synthetic_5",stage="place"}`
	if got := strings.Count(text, place); got != 1 {
		t.Errorf("cancelled place stage rendered %d times, want exactly 1:\n%s", got, text)
	}
	if strings.Contains(text, `parchmint_stage_seconds_total{task="planar_synthetic_5",stage="route"}`) {
		t.Errorf("route stage recorded for a request cancelled during place:\n%s", text)
	}
}

func TestRequestIDAndLog(t *testing.T) {
	var logBuf bytes.Buffer
	h := New(Config{Workers: 1, Logger: obs.NewLogger("json", &logBuf)}).Handler()
	w := do(t, h, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	reqID := w.Header().Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("response is missing X-Request-Id")
	}
	// IDs carry a per-boot nonce so two service boots never mint the same
	// ID; the sequence still starts at 1 within one boot.
	if !bootIDPattern.MatchString(reqID) {
		t.Errorf("X-Request-Id = %q, want req-<boot nonce>-<seq>", reqID)
	}
	if !strings.HasSuffix(reqID, "-00000001") {
		t.Errorf("first request of a boot minted %q, want sequence 00000001", reqID)
	}
	var rec struct {
		Msg      string `json:"msg"`
		ID       string `json:"id"`
		Endpoint string `json:"endpoint"`
		Status   int    `json:"status"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &rec); err != nil {
		t.Fatalf("request log is not one JSON record: %v\n%s", err, logBuf.String())
	}
	if rec.Msg != "request" || rec.ID != reqID || rec.Endpoint != "healthz" || rec.Status != 200 {
		t.Errorf("request log = %+v, want msg=request id=%s endpoint=healthz status=200", rec, reqID)
	}
	// The request ID also lands on the handler's root span.
	tr := do(t, h, "GET", "/debug/trace", "")
	if !strings.Contains(tr.Body.String(), reqID) {
		t.Errorf("trace lost the request id %s:\n%s", reqID, tr.Body)
	}
}
