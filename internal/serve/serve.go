// Package serve exposes the whole ParchMint pipeline — validation, MINT
// conversion, place-and-route, characterization, and SVG rendering — as a
// concurrent HTTP JSON service. Handlers consume the same public pipeline
// API as the command-line tools (cli.Load, pnr.RunContext, stats, render),
// admission is bounded by a runner.Gate, and seeds follow the runner's
// determinism contract: identical request bodies produce byte-identical
// responses at any worker count.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/runner"
)

// Config tunes the service.
type Config struct {
	// Workers bounds concurrent pipeline computations; <1 means NumCPU.
	Workers int
	// BaseSeed is the base of the per-device seed derivation: a request
	// without an explicit seed runs with DeriveSeed(BaseSeed, deviceName).
	BaseSeed uint64
	// MaxBodyBytes caps request bodies; 0 means 8 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds each request's pipeline work; 0 means 60s.
	RequestTimeout time.Duration
}

func (c Config) maxBody() int64 {
	if c.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return c.MaxBodyBytes
}

func (c Config) timeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 60 * time.Second
	}
	return c.RequestTimeout
}

// Server is the service state: configuration, the admission gate, the
// stage-timing accumulator, and the request counters.
type Server struct {
	cfg     Config
	gate    *runner.Gate
	timings *runner.Timings
	metrics *metrics
}

// New builds a server; the zero Config selects all defaults.
func New(cfg Config) *Server {
	return &Server{
		cfg:     cfg,
		gate:    runner.NewGate(cfg.Workers, cfg.BaseSeed),
		timings: &runner.Timings{},
		metrics: newMetrics(),
	}
}

// Handler returns the service's routing table. Every pipeline endpoint is
// wrapped with the request body limit, the per-request timeout, and the
// metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/validate", s.wrap("validate", s.handleValidate))
	mux.Handle("POST /v1/convert", s.wrap("convert", s.handleConvert))
	mux.Handle("POST /v1/pnr", s.wrap("pnr", s.handlePNR))
	mux.Handle("POST /v1/stats", s.wrap("stats", s.handleStats))
	mux.Handle("POST /v1/render.svg", s.wrap("render", s.handleRender))
	mux.Handle("GET /v1/bench", s.wrap("bench-list", s.handleBenchList))
	mux.Handle("GET /v1/bench/{name}", s.wrap("bench-get", s.handleBenchGet))
	mux.Handle("GET /healthz", s.wrap("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiHandler is the shape of the endpoint handlers: they return an error
// instead of writing failure responses themselves, so the status mapping
// lives in exactly one place (httpStatus).
type apiHandler func(w http.ResponseWriter, r *http.Request) error

// statusWriter captures the status code for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// wrap applies the service middleware: body size limit, request timeout,
// status capture, error-to-status mapping, and per-endpoint metrics.
func (s *Server) wrap(endpoint string, h apiHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.maxBody())
		}
		ctx, cancel := withTimeout(r.Context(), s.cfg.timeout())
		defer cancel()
		if err := h(sw, r.WithContext(ctx)); err != nil {
			writeError(sw, err)
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.metrics.observe(endpoint, sw.status, time.Since(start))
	})
}

// writeJSON renders a JSON response body with a trailing newline. The
// encoder is deterministic for the response DTOs (struct field order;
// map keys sorted by encoding/json), which is what makes identical
// request bodies yield byte-identical responses.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding response: %w", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
