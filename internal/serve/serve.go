// Package serve exposes the whole ParchMint pipeline — validation, MINT
// conversion, place-and-route, characterization, and SVG rendering — as a
// concurrent HTTP JSON service. Handlers consume the same public pipeline
// API as the command-line tools (cli.Load, pnr.RunContext, stats, render),
// admission is bounded by a runner.Gate, and seeds follow the runner's
// determinism contract: identical request bodies produce byte-identical
// responses at any worker count. Telemetry — spans into a ring buffer
// served at /debug/trace, metrics on the shared obs.Registry at /metrics,
// structured request logs with propagated request IDs — is out-of-band
// and never feeds the computation.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// Config tunes the service.
type Config struct {
	// Workers bounds concurrent pipeline computations; <1 means NumCPU.
	Workers int
	// BaseSeed is the base of the per-device seed derivation: a request
	// without an explicit seed runs with DeriveSeed(BaseSeed, deviceName).
	BaseSeed uint64
	// MaxBodyBytes caps request bodies; 0 means 8 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds each request's pipeline work; 0 means 60s.
	RequestTimeout time.Duration
	// Logger receives one structured record per finished request; nil
	// disables request logging.
	Logger *slog.Logger
	// TraceEvents caps the span ring buffer served at /debug/trace; 0
	// selects obs.DefaultTraceEvents.
	TraceEvents int
}

func (c Config) maxBody() int64 {
	if c.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return c.MaxBodyBytes
}

func (c Config) timeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 60 * time.Second
	}
	return c.RequestTimeout
}

// Server is the service state: configuration, the admission gate, and the
// telemetry spine (registry, tracer, recorder) every request context
// carries.
type Server struct {
	cfg    Config
	gate   *runner.Gate
	reg    *obs.Registry
	tracer *obs.Tracer
	rec    *obs.Recorder
	start  time.Time
	reqSeq atomic.Uint64

	// Pre-resolved endpoint instruments.
	mRequests *obs.Counter   // {endpoint, status}
	mLatency  *obs.Counter   // {endpoint}
	mErrors   *obs.Counter   // {endpoint}
	mStage    *obs.Counter   // {task, stage}
	mDuration *obs.Histogram // {endpoint}
}

// New builds a server; the zero Config selects all defaults.
func New(cfg Config) *Server {
	s := &Server{
		cfg:    cfg,
		gate:   runner.NewGate(cfg.Workers, cfg.BaseSeed),
		reg:    obs.NewRegistry(),
		tracer: obs.NewTracer(cfg.TraceEvents),
		start:  time.Now(),
	}
	// Registration order is scrape order; the first six families keep the
	// names and order of the exporter this registry replaced.
	s.mRequests = s.reg.Counter("parchmint_requests_total",
		"Requests served, by endpoint and status.", "endpoint", "status")
	s.mLatency = s.reg.Counter("parchmint_request_seconds_total",
		"Cumulative request wall time, by endpoint.", "endpoint")
	s.mErrors = s.reg.Counter("parchmint_errors_total",
		"Responses with status >= 400, by endpoint.", "endpoint")
	s.mStage = s.reg.Counter("parchmint_stage_seconds_total",
		"Cumulative pipeline stage wall time, by device task and stage.", "task", "stage")
	s.reg.GaugeFunc("parchmint_workers",
		"Admission limit of the pipeline worker gate.",
		func() float64 { return float64(s.gate.Workers()) })
	s.reg.GaugeFunc("parchmint_inflight",
		"Pipeline computations currently admitted.",
		func() float64 { return float64(s.gate.InFlight()) })
	s.mDuration = s.reg.Histogram("parchmint_request_duration_seconds",
		"Request latency distribution, by endpoint.", nil, "endpoint")
	// The recorder registers the algorithm families (anneal temperature and
	// acceptance, route expansions and pushes) and is what the handlers
	// attach to every request context.
	s.rec = obs.NewRecorder(s.tracer, s.reg, cfg.Logger)
	return s
}

// Handler returns the service's routing table. Every pipeline endpoint is
// wrapped with the request body limit, the per-request timeout, and the
// telemetry middleware; /metrics and /debug/trace serve the raw telemetry
// and are deliberately unwrapped so they never gate on the worker pool.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/validate", s.wrap("validate", s.handleValidate))
	mux.Handle("POST /v1/convert", s.wrap("convert", s.handleConvert))
	mux.Handle("POST /v1/pnr", s.wrap("pnr", s.handlePNR))
	mux.Handle("POST /v1/stats", s.wrap("stats", s.handleStats))
	mux.Handle("POST /v1/render.svg", s.wrap("render", s.handleRender))
	mux.Handle("GET /v1/bench", s.wrap("bench-list", s.handleBenchList))
	mux.Handle("GET /v1/bench/{name}", s.wrap("bench-get", s.handleBenchGet))
	mux.Handle("GET /healthz", s.wrap("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	return mux
}

// apiHandler is the shape of the endpoint handlers: they return an error
// instead of writing failure responses themselves, so the status mapping
// lives in exactly one place (httpStatus).
type apiHandler func(w http.ResponseWriter, r *http.Request) error

// statusWriter captures the status code for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// wrap applies the service middleware: body size limit, request timeout,
// status capture, error-to-status mapping, and telemetry. Each request
// gets an ID (echoed in X-Request-Id, stamped on spans and the request
// log), a root span named http.<endpoint>, and the server's recorder on
// its context so pipeline spans and algorithm metrics flow from the
// engines without the handlers knowing. Telemetry never touches seeds or
// response bodies: identical request bodies stay byte-identical.
func (s *Server) wrap(endpoint string, h apiHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.maxBody())
		}
		ctx, cancel := withTimeout(r.Context(), s.cfg.timeout())
		defer cancel()
		reqID := fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
		ctx = obs.WithRecorder(ctx, s.rec)
		ctx = obs.WithRequestID(ctx, reqID)
		ctx, span := obs.Start(ctx, "http."+endpoint)
		sw.Header().Set("X-Request-Id", reqID)
		if err := h(sw, r.WithContext(ctx)); err != nil {
			writeError(sw, err)
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		span.SetAttr("status", sw.status)
		span.End()
		d := time.Since(start)
		s.observe(endpoint, sw.status, d)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Info("request",
				"id", reqID,
				"endpoint", endpoint,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", float64(d.Microseconds())/1000)
		}
	})
}

// writeJSON renders a JSON response body with a trailing newline. The
// encoder is deterministic for the response DTOs (struct field order;
// map keys sorted by encoding/json), which is what makes identical
// request bodies yield byte-identical responses.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding response: %w", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
