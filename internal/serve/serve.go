// Package serve exposes the whole ParchMint pipeline — validation, MINT
// conversion, place-and-route, characterization, and SVG rendering — as a
// concurrent HTTP JSON service. Handlers consume the same public pipeline
// API as the command-line tools (cli.Load, pnr.RunContext, stats, render),
// admission is bounded by a runner.Gate with optional load shedding, and
// seeds follow the runner's determinism contract: identical request bodies
// produce byte-identical responses at any worker count. That contract is
// what makes the content-addressed result cache safe: a stored response is
// indistinguishable from a recomputed one. Telemetry — spans into a ring
// buffer served at /debug/trace, metrics on the shared obs.Registry at
// /metrics, structured request logs with propagated request IDs — is
// out-of-band and never feeds the computation.
package serve

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Config tunes the service.
type Config struct {
	// Workers bounds concurrent pipeline computations; <1 means NumCPU.
	Workers int
	// BaseSeed is the base of the per-device seed derivation: a request
	// without an explicit seed runs with DeriveSeed(BaseSeed, deviceName).
	BaseSeed uint64
	// MaxBodyBytes caps request bodies; 0 means 8 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds each request's pipeline work; 0 means 60s.
	RequestTimeout time.Duration
	// Logger receives one structured record per finished request; nil
	// disables request logging.
	Logger *slog.Logger
	// TraceEvents caps the span ring buffer served at /debug/trace; 0
	// selects obs.DefaultTraceEvents.
	TraceEvents int
	// CacheBytes bounds the content-addressed result cache; 0 disables
	// caching entirely.
	CacheBytes int64
	// QueueDepth bounds how many requests may wait for a worker slot
	// before admission sheds with 429; 0 means unbounded (never shed on
	// queue depth).
	QueueDepth int
	// Replicas is the default parallel-tempering replica count for pnr
	// (and render-triggered pnr) requests; a request's explicit
	// "replicas" field overrides it. Values below 2 keep the classic
	// single-replica annealing schedule.
	Replicas int
	// RouteWorkers is the router's speculative net-search width for pnr
	// requests; below 2 keeps sequential routing. This knob never changes
	// response bytes — parallel routing is byte-identical to sequential —
	// so it takes no part in cache keys.
	RouteWorkers int
	// Journal, when non-nil, makes job submissions durable: lifecycle
	// transitions append to it and New replays it, restoring completed
	// jobs (re-seeding the result cache) and re-enqueueing interrupted
	// ones. Nil keeps jobs in-memory only. The journal is owned by the
	// caller and not closed by the server.
	Journal *job.Journal
	// MaxJobs caps retained jobs (terminal ones are evicted oldest-first
	// past the cap); <1 selects the job store's default.
	MaxJobs int
	// JobTimeout bounds one job's execution (not its queue wait); 0 means
	// no limit — jobs exist precisely for work that outlives the request
	// timeout.
	JobTimeout time.Duration
	// JobHeartbeat is the SSE keep-alive comment interval; 0 means 15s.
	// Tests shorten it to observe disconnect handling quickly.
	JobHeartbeat time.Duration
	// FlightRequests caps the tail-sampled request flight recorder served
	// at /debug/requests; 0 selects obs.DefaultFlightRequests, negative
	// disables the recorder entirely.
	FlightRequests int
	// TraceSample is the probability an ordinary request — not an error,
	// not shed, not in the slow tail — is retained by the flight recorder;
	// 0 selects obs.DefaultTraceSample, negative means never. Errors, shed
	// requests, and the slowest-p99 tail are always kept regardless.
	TraceSample float64
	// Peers is the full cluster membership (absolute URLs, including
	// Self). Empty keeps the server single-node: the ring is never
	// consulted and responses are byte-identical to the peerless build.
	Peers []string
	// Self is this node's own peer address, exactly as it appears in
	// Peers. Required when Peers is non-empty.
	Self string
	// PeerHealthInterval is the per-peer health probe period; 0 selects
	// the cluster default (2s). Tests shorten it to observe failover.
	PeerHealthInterval time.Duration
	// PeerHedgeDelay is how long a peer cache probe waits before racing a
	// second attempt; 0 selects the cluster default (30ms).
	PeerHedgeDelay time.Duration
	// PeerTransport overrides the peer client's HTTP transport (tests);
	// nil selects http.DefaultTransport.
	PeerTransport http.RoundTripper
}

func (c Config) maxBody() int64 {
	if c.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return c.MaxBodyBytes
}

func (c Config) timeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 60 * time.Second
	}
	return c.RequestTimeout
}

func (c Config) jobHeartbeat() time.Duration {
	if c.JobHeartbeat <= 0 {
		return 15 * time.Second
	}
	return c.JobHeartbeat
}

// queueDepth maps the config's 0-means-unbounded convention onto the
// gate's negative-means-unbounded one.
func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return -1
	}
	return c.QueueDepth
}

func (c Config) traceSample() float64 {
	if c.TraceSample == 0 {
		return obs.DefaultTraceSample
	}
	if c.TraceSample < 0 {
		return 0
	}
	return c.TraceSample
}

// Server is the service state: configuration, the admission gate, the
// result cache, and the telemetry spine (registry, tracer, recorder)
// every request context carries.
type Server struct {
	cfg    Config
	gate   *runner.Gate
	budget *runner.Budget
	// budgetVal is the budget boxed once, so the per-request context can
	// answer budget lookups without re-boxing.
	budgetVal any
	cache     *cache.Cache // nil when caching is disabled
	reg       *obs.Registry
	tracer    *obs.Tracer
	rec       *obs.Recorder
	flight    *obs.FlightRecorder // nil when the flight recorder is disabled
	start     time.Time
	ids       *obs.IDSource
	jobs      *job.Store
	cluster   *cluster.Cluster // nil when running single-node

	// Pre-resolved endpoint instruments.
	mRequests   *obs.Counter   // {endpoint, status}
	mLatency    *obs.Counter   // {endpoint}
	mErrors     *obs.Counter   // {endpoint}
	mStage      *obs.Counter   // {task, stage}
	mDuration   *obs.Histogram // {endpoint}
	mCacheReq   *obs.Counter   // {endpoint, outcome}
	mCacheEvict *obs.Counter
	mShed       *obs.Counter // {endpoint}

	// mCacheCells pre-binds every operation × outcome series of
	// mCacheReq, so the cached execution path records without the
	// variadic label join.
	mCacheCells map[string]*[3]*obs.CounterCell

	// Job lifecycle instruments, fed by the store's hooks.
	mJobsSubmitted *obs.Counter
	mJobsStarted   *obs.Counter
	mJobsCompleted *obs.Counter
	mJobsCanceled  *obs.Counter
	mJobsFailed    *obs.Counter
	mJobDur        *obs.Histogram // {status}

	// mJournalDropped surfaces unparseable journal lines skipped at boot,
	// so mid-file corruption is visible before a handoff replays from it.
	mJournalDropped *obs.Counter
}

// New builds a server; the zero Config selects all defaults.
func New(cfg Config) *Server {
	s := &Server{
		cfg:  cfg,
		gate: runner.NewBoundedGate(cfg.Workers, cfg.queueDepth(), cfg.BaseSeed),
		// One process-wide CPU ledger for the solvers' nested parallelism
		// (replica annealing, speculative routing): admitted requests own
		// their goroutine; extra fan-out draws tokens from this budget, so
		// gate × solver parallelism can never oversubscribe the machine.
		budget: runner.NewBudget(0),
		reg:    obs.NewRegistry(),
		tracer: obs.NewTracer(cfg.TraceEvents),
		start:  time.Now(),
		ids:    obs.NewIDSource(),
	}
	// Registration order is scrape order; the first six families keep the
	// names and order of the exporter this registry replaced, and the
	// cache/shed families append after them.
	s.mRequests = s.reg.Counter("parchmint_requests_total",
		"Requests served, by endpoint and status.", "endpoint", "status")
	s.mLatency = s.reg.Counter("parchmint_request_seconds_total",
		"Cumulative request wall time, by endpoint.", "endpoint")
	s.mErrors = s.reg.Counter("parchmint_errors_total",
		"Responses with status >= 400, by endpoint.", "endpoint")
	s.mStage = s.reg.Counter("parchmint_stage_seconds_total",
		"Cumulative pipeline stage wall time, by device task and stage.", "task", "stage")
	s.reg.GaugeFunc("parchmint_workers",
		"Admission limit of the pipeline worker gate.",
		func() float64 { return float64(s.gate.Workers()) })
	s.reg.GaugeFunc("parchmint_inflight",
		"Pipeline computations currently admitted.",
		func() float64 { return float64(s.gate.InFlight()) })
	s.mDuration = s.reg.Histogram("parchmint_request_duration_seconds",
		"Request latency distribution, by endpoint.", nil, "endpoint")
	s.mCacheReq = s.reg.Counter("parchmint_cache_requests_total",
		"Result cache lookups, by endpoint and outcome (hit, miss, coalesced).", "endpoint", "outcome")
	s.mCacheEvict = s.reg.Counter("parchmint_cache_evictions_total",
		"Result cache entries evicted to stay under the byte bound.")
	s.reg.GaugeFunc("parchmint_cache_bytes",
		"Bytes held by the result cache.",
		func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.Stats().Bytes)
		})
	s.reg.GaugeFunc("parchmint_cache_entries",
		"Entries held by the result cache.",
		func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.Stats().Entries)
		})
	s.mShed = s.reg.Counter("parchmint_shed_total",
		"Requests refused at admission with 429, by endpoint.", "endpoint")
	s.reg.GaugeFunc("parchmint_queue_waiting",
		"Requests waiting for a worker slot.",
		func() float64 { return float64(s.gate.Waiting()) })
	s.mJobsSubmitted = s.reg.Counter("parchmint_jobs_submitted_total",
		"Jobs accepted for async execution (including journal re-enqueues).")
	s.mJobsStarted = s.reg.Counter("parchmint_jobs_running_total",
		"Jobs that entered execution.")
	s.mJobsCompleted = s.reg.Counter("parchmint_jobs_completed_total",
		"Jobs finished successfully.")
	s.mJobsCanceled = s.reg.Counter("parchmint_jobs_canceled_total",
		"Jobs canceled before or during execution.")
	s.mJobsFailed = s.reg.Counter("parchmint_jobs_failed_total",
		"Jobs finished with an execution error.")
	s.reg.GaugeFunc("parchmint_jobs_active",
		"Jobs executing right now.",
		func() float64 {
			if s.jobs == nil {
				return 0
			}
			return float64(s.jobs.Running())
		})
	s.mJobDur = s.reg.Histogram("parchmint_job_duration_seconds",
		"Job execution latency (start to finish), by terminal status.", nil, "status")
	// Build identity and process lifecycle, Prometheus conventions: an
	// info-style constant gauge keyed by the same probe /healthz reads,
	// and the start time scrape-relative dashboards derive uptime from.
	version, revision := buildInfo()
	s.reg.Gauge("parchmint_build_info",
		"Build identity of the running binary; value is always 1.",
		"version", "go_version", "vcs_revision").
		Set(1, version, runtime.Version(), revision)
	s.reg.GaugeFunc("parchmint_process_start_time_seconds",
		"Unix time the server started, in seconds.",
		func() float64 { return float64(s.start.UnixNano()) / 1e9 })
	if cfg.FlightRequests >= 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightRequests, cfg.traceSample())
	}
	s.reg.GaugeFunc("parchmint_flight_records",
		"Request records currently retained by the flight recorder.",
		func() float64 { return float64(s.flight.Stats().Records) })
	// Runtime health series (parchmint_go_*), sampled at scrape time.
	obs.RegisterRuntimeMetrics(s.reg)
	s.mJournalDropped = s.reg.Counter("parchmint_journal_dropped_lines_total",
		"Journal lines skipped as unparseable during boot replay.")
	if cfg.Journal != nil {
		s.mJournalDropped.Add(float64(cfg.Journal.Dropped()))
	}
	if len(cfg.Peers) > 0 {
		// The cluster registers the parchmint_peer_* families and starts
		// its health loops here; membership errors are configuration bugs
		// the CLI pre-validates (cluster.ValidateMembership), so reaching
		// one through the library API is a programmer error.
		cl, err := cluster.New(cluster.Config{
			Self:           cfg.Self,
			Peers:          cfg.Peers,
			HealthInterval: cfg.PeerHealthInterval,
			HedgeDelay:     cfg.PeerHedgeDelay,
			Transport:      cfg.PeerTransport,
			Registry:       s.reg,
			Logger:         cfg.Logger,
		})
		if err != nil {
			panic(fmt.Sprintf("serve: invalid cluster config: %v", err))
		}
		s.cluster = cl
	}
	s.mCacheCells = make(map[string]*[3]*obs.CounterCell, len(operations))
	for _, op := range operations {
		cells := new([3]*obs.CounterCell)
		for _, o := range []cache.Outcome{cache.Miss, cache.Hit, cache.Coalesced} {
			cells[o] = s.mCacheReq.Cell(op.Name, o.String())
		}
		s.mCacheCells[op.Name] = cells
	}
	s.budgetVal = s.budget
	if cfg.CacheBytes > 0 {
		s.cache = cache.New(cfg.CacheBytes)
		s.cache.OnEvict(func(n int) { s.mCacheEvict.Add(float64(n)) })
	}
	// The recorder registers the algorithm families (anneal temperature and
	// acceptance, route expansions and pushes) and is what the handlers
	// attach to every request context.
	s.rec = obs.NewRecorder(s.tracer, s.reg, cfg.Logger)
	// The job store comes last: constructing it replays the journal, and
	// replayed jobs execute through jobExec, which needs the gate, cache,
	// and recorder above to be live.
	s.jobs = job.NewStore(job.Config{
		Exec:    s.jobExec,
		Workers: s.gate.Workers(),
		DescribeError: func(err error) (int, string) {
			status := httpStatus(err)
			return status, errorCode(err, status)
		},
		Journal: cfg.Journal,
		SeedCache: func(key string, ent cache.Entry) {
			if s.cache != nil {
				s.cache.Put(key, ent)
			}
		},
		ResultPath: jobResultPath,
		Timeout:    cfg.JobTimeout,
		MaxJobs:    cfg.MaxJobs,
		Hooks: job.Hooks{
			Submitted: func() { s.mJobsSubmitted.Inc() },
			Started:   func() { s.mJobsStarted.Inc() },
			Finished: func(status job.Status, d time.Duration) {
				switch status {
				case job.StatusCompleted:
					s.mJobsCompleted.Inc()
				case job.StatusCanceled:
					s.mJobsCanceled.Inc()
				case job.StatusFailed:
					s.mJobsFailed.Inc()
				}
				s.mJobDur.Observe(d.Seconds(), string(status))
			},
		},
	})
	return s
}

// Close cancels every in-flight job, waits for the job runners to drain,
// and stops the cluster health loops. The HTTP listener and the journal
// belong to the caller.
func (s *Server) Close() {
	s.jobs.Close()
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// Handler returns the service's routing table. Every pipeline endpoint is
// wrapped with the request body limit, the per-request timeout, and the
// telemetry middleware. Body-less GET endpoints skip the body limit, and
// the health endpoint additionally skips the pipeline timeout — a probe
// must answer even when every worker is saturated. The debug endpoints
// are wrapped too (without body limit or timeout), so bad query params
// answer in the unified error envelope; /metrics alone stays unwrapped,
// so scraping never gates on the worker pool or pollutes the very
// series it reads.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/validate", s.wrap(opValidate, s.serveOp(opValidate)))
	mux.Handle("POST /v1/convert", s.wrap(opConvert, s.serveOp(opConvert)))
	mux.Handle("POST /v1/pnr", s.wrap(opPNR, s.serveOp(opPNR)))
	mux.Handle("POST /v1/stats", s.wrap(opStats, s.serveOp(opStats)))
	mux.Handle("POST /v1/render.svg", s.wrap(opRender, s.serveOp(opRender)))
	mux.Handle("POST /v1/batch", s.wrap("batch", s.handleBatch))
	mux.Handle("POST /v1/jobs", s.wrap("jobs-submit", s.handleJobSubmit))
	mux.Handle("GET /v1/jobs", s.wrapWith("jobs-list", s.handleJobList, wrapOpts{noBodyLimit: true}))
	mux.Handle("GET /v1/jobs/{id}", s.wrapWith("jobs-get", s.handleJobGet, wrapOpts{noBodyLimit: true}))
	mux.Handle("GET /v1/jobs/{id}/result", s.wrapWith("jobs-result", s.handleJobResult, wrapOpts{noBodyLimit: true}))
	// The event stream outlives any request timeout by design; it ends
	// when the job does (or the client goes away, which cancels the job).
	// It also skips compression: SSE's value is incremental delivery,
	// which the compressor's buffering would defeat.
	mux.Handle("GET /v1/jobs/{id}/events", s.wrapWith("jobs-events", s.handleJobEvents, wrapOpts{noBodyLimit: true, noTimeout: true, noCompress: true}))
	mux.Handle("DELETE /v1/jobs/{id}", s.wrapWith("jobs-cancel", s.handleJobCancel, wrapOpts{noBodyLimit: true}))
	mux.Handle("GET /v1/bench", s.wrapWith("bench-list", s.handleBenchList, wrapOpts{noBodyLimit: true}))
	mux.Handle("GET /v1/bench/{name}", s.wrapWith("bench-get", s.handleBenchGet, wrapOpts{noBodyLimit: true}))
	mux.Handle("GET /healthz", s.wrapWith("healthz", s.handleHealthz, wrapOpts{noBodyLimit: true, noTimeout: true}))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/trace", s.wrapWith("debug-trace", s.handleTrace, wrapOpts{noBodyLimit: true, noTimeout: true}))
	mux.Handle("GET /debug/requests", s.wrapWith("debug-requests", s.handleFlightList, wrapOpts{noBodyLimit: true, noTimeout: true}))
	mux.Handle("GET /debug/requests/{id}", s.wrapWith("debug-requests-get", s.handleFlightGet, wrapOpts{noBodyLimit: true, noTimeout: true}))
	if s.cluster != nil {
		// Peer-facing routes exist only in cluster mode, so a single-node
		// server's surface (and responses) stay byte-identical to the
		// peerless build. The cache probe skips compression: probe bodies
		// are adopted verbatim into the requester's cache, and the exact
		// stored bytes are the point.
		mux.Handle("GET /internal/cache/{key}", s.wrapWith("peer-cache", s.handlePeerCache, wrapOpts{noBodyLimit: true, noCompress: true}))
		mux.Handle("POST /internal/shard", s.wrap("shard", s.handleShard))
	}
	return mux
}

// apiHandler is the shape of the endpoint handlers: they return an error
// instead of writing failure responses themselves, so the status mapping
// lives in exactly one place (httpStatus).
type apiHandler func(w http.ResponseWriter, r *http.Request) error

// statusWriter captures the status code for the metrics middleware while
// preserving the underlying writer's optional interfaces: without the
// Flush/ReadFrom passthroughs and Unwrap, wrapping would silently disable
// streaming (http.Flusher) and sendfile (io.ReaderFrom) for every
// wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

var (
	_ http.Flusher  = (*statusWriter)(nil)
	_ io.ReaderFrom = (*statusWriter)(nil)
)

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.NewResponseController can
// discover upgrades (Flush, SetWriteDeadline, Hijack) through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush forwards to the underlying writer's http.Flusher, if any.
func (w *statusWriter) Flush() {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom forwards to the underlying writer's io.ReaderFrom (the
// sendfile path), falling back to a plain copy.
func (w *statusWriter) ReadFrom(src io.Reader) (int64, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if rf, ok := w.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	// Hide the underlying writer's other methods so io.Copy does not
	// rediscover this ReadFrom and recurse.
	return io.Copy(struct{ io.Writer }{w.ResponseWriter}, src)
}

// wrapOpts selects which middleware layers an endpoint gets.
type wrapOpts struct {
	// noBodyLimit skips http.MaxBytesReader — for body-less GET endpoints,
	// where limiting only wraps http.NoBody in dead machinery.
	noBodyLimit bool
	// noTimeout skips the pipeline deadline — for health and debug
	// endpoints that must answer even when the pipeline is saturated or
	// the configured timeout is pathological.
	noTimeout bool
	// noCompress skips Accept-Encoding negotiation — for the SSE stream,
	// where compression buffering would defeat incremental delivery.
	noCompress bool
}

// wrap applies the full service middleware stack: body size limit,
// request timeout, status capture, error-to-status mapping, and
// telemetry.
func (s *Server) wrap(endpoint string, h apiHandler) http.Handler {
	return s.wrapWith(endpoint, h, wrapOpts{})
}

// wrapWith is wrap with per-endpoint layer selection. Each request gets
// an ID (echoed in X-Request-Id, stamped on spans and the request log), a
// root span named http.<endpoint>, and the server's recorder on its
// context so pipeline spans and algorithm metrics flow from the engines
// without the handlers knowing. Telemetry never touches seeds or response
// bodies: identical request bodies stay byte-identical.
//
// This is the serving hot path, so the per-request machinery is pooled:
// one reqState carries the status writer, body buffer, decoded envelope,
// and a combined context link that answers the recorder, request ID,
// span, and CPU budget without a WithValue chain. The per-endpoint
// metric cells are bound once, here, at wrap time.
func (s *Server) wrapWith(endpoint string, h apiHandler, o wrapOpts) http.Handler {
	em := s.endpointMetrics(endpoint)
	spanName := "http." + endpoint
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st := getReqState()
		defer putReqState(st)
		st.sw = statusWriter{ResponseWriter: w}
		sw := &st.sw
		if !o.noBodyLimit && r.Body != nil && r.Body != http.NoBody {
			limit := s.cfg.maxBody()
			st.lim = limitedBody{rc: r.Body, remain: limit, limit: limit}
			r.Body = &st.lim
		}
		reqID := s.ids.Next()
		st.vals.Rec = s.rec
		st.vals.SetID(reqID)
		// W3C trace context: join an inbound trace as a child (same trace
		// ID, fresh span ID), replace a malformed or absent traceparent
		// with a fresh root per spec. The map index (not Header.Get) keeps
		// the lookup of the non-canonical-cased wire name allocation-free.
		var inbound string
		if v := r.Header["Traceparent"]; len(v) > 0 {
			inbound = v[0]
		}
		tc, joined := obs.ParseTraceparent(inbound)
		if joined {
			tc = tc.Child()
			if v := r.Header["Tracestate"]; len(v) > 0 && obs.ValidTracestate(v[0]) {
				tc.State = v[0]
			}
		} else {
			tc = obs.NewTraceContext()
		}
		// One string materializes the whole identity; the trace ID is a
		// substring of it, so stamping spans, logs, and exemplars shares
		// the same backing bytes.
		var tpb [55]byte
		tp := string(obs.AppendTraceparent(tpb[:0], tc))
		st.vals.SetTrace(tp, tp[3:35])
		st.vals.Span = s.rec.NewRootSpan(spanName, st.vals.IDVal())
		st.vals.Span.SetAttr("trace_id", st.vals.TraceIDVal())
		if s.flight != nil {
			st.fl.Reset(start)
			st.vals.Span.CaptureTo(&st.fl)
		}
		st.ctx = reqContext{parent: r.Context(), vals: &st.vals, budget: s.budgetVal, state: st.self}
		var ctx context.Context = &st.ctx
		if !o.noTimeout {
			var cancel func()
			ctx, cancel = withTimeout(ctx, s.cfg.timeout())
			defer cancel()
		}
		// The header values escape the request (httptest recorders and
		// proxies read them afterwards), so they cannot come from the pool.
		hdr := sw.Header()
		hdr["X-Request-Id"] = []string{reqID}
		hdr["Traceparent"] = []string{tp}
		if tc.State != "" {
			hdr["Tracestate"] = []string{tc.State}
		}
		var hw http.ResponseWriter = sw
		var gzw *gzipWriter
		if !o.noCompress && acceptsGzip(r) {
			gz := gzipPool.Get().(*gzip.Writer)
			gz.Reset(sw)
			hdr := sw.Header()
			hdr["Content-Encoding"] = gzipEncodingVal
			hdr["Vary"] = varyAcceptVal
			gzw = &gzipWriter{sw: sw, gz: gz}
			hw = gzw
		}
		r2 := r.WithContext(ctx)
		runHandler(ctx, h, hw, r2, gzw)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		st.vals.Span.SetAttr("status", sw.status)
		st.vals.Span.End()
		d := time.Since(start)
		s.observe(em, sw.status, d, st.vals.TraceID())
		if s.flight != nil {
			var outcome string
			if v := hdr[cacheHeader]; len(v) > 0 {
				outcome = v[0]
			}
			s.flight.Offer(obs.RequestRecord{
				ID:          reqID,
				TraceID:     st.vals.TraceID(),
				Traceparent: tp,
				Endpoint:    endpoint,
				Method:      r.Method,
				Path:        r.URL.Path,
				Status:      sw.status,
				Start:       start,
				Duration:    d,
				Cache:       outcome,
			}, &st.fl)
		}
		if s.cfg.Logger != nil {
			s.cfg.Logger.Info("request",
				"id", reqID,
				"trace", st.vals.TraceID(),
				"endpoint", endpoint,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", float64(d.Microseconds())/1000)
		}
	})
}

// Shared constant header values, so hot-path header assignment is one
// map store of a prewritten slice. net/http only ever reads them.
var (
	ctJSONVal = []string{"application/json"}
	ctSVGVal  = []string{"image/svg+xml"}
)

// contentTypeValue maps a content type to a shared header slice,
// allocating only for types outside the service's two.
func contentTypeValue(ct string) []string {
	switch ct {
	case "application/json":
		return ctJSONVal
	case "image/svg+xml":
		return ctSVGVal
	}
	return []string{ct}
}

// prettyRequested reports whether the raw query opts into indented
// output: pretty, pretty=1, pretty=true, or pretty=yes. The scan
// allocates nothing, so the common no-query request pays one length
// check.
func prettyRequested(rawQuery string) bool {
	for q := rawQuery; q != ""; {
		var kv string
		kv, q, _ = strings.Cut(q, "&")
		k, v, _ := strings.Cut(kv, "=")
		if k == "pretty" {
			return v == "" || v == "1" || v == "true" || v == "yes"
		}
	}
	return false
}

// requestPretty is prettyRequested over a request, tolerating the nil
// request some internal callers pass.
func requestPretty(r *http.Request) bool {
	return r != nil && prettyRequested(r.URL.RawQuery)
}

// jsonBufPool holds the scratch buffers writeJSON renders into — pooled
// so batch envelopes and job documents do not allocate a fresh buffer
// per response.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledJSONBuf caps the capacity a pooled writeJSON buffer retains.
const maxPooledJSONBuf = 1 << 20

// writeJSON renders a JSON response body with a trailing newline —
// compact by default, indented when the request carries ?pretty=1. The
// encoder is deterministic for the response DTOs (struct field order;
// map keys sorted by encoding/json), which is what makes identical
// request bodies yield byte-identical responses; the pretty rendering is
// a pure reformatting of the same compact bytes.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) error {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	if requestPretty(r) {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(v); err != nil {
		jsonBufPool.Put(buf)
		return fmt.Errorf("serve: encoding response: %w", err)
	}
	h := w.Header()
	h["Content-Type"] = ctJSONVal
	w.WriteHeader(status)
	_, err := w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledJSONBuf {
		jsonBufPool.Put(buf)
	}
	return err
}

// indentEntry reformats a stored compact JSON body (with its trailing
// newline) into the indented form ?pretty=1 serves — byte-identical to
// what writeJSON's pretty path renders for the same value.
func indentEntry(compact []byte) ([]byte, error) {
	var out bytes.Buffer
	out.Grow(2 * len(compact))
	if err := json.Indent(&out, bytes.TrimRight(compact, "\n"), "", "  "); err != nil {
		return nil, fmt.Errorf("serve: indenting response: %w", err)
	}
	out.WriteByte('\n')
	return out.Bytes(), nil
}
