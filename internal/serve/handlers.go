package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/render"
	"repro/internal/route"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/validate"
)

// request is the shared JSON envelope of the pipeline endpoints. Exactly
// one device source must be given: a suite benchmark name, an inline
// ParchMint JSON document, or device text with an explicit format.
type request struct {
	// Bench names a built-in suite benchmark ("rotary_pcr").
	Bench string `json:"bench,omitempty"`
	// Device is an inline ParchMint JSON document.
	Device json.RawMessage `json:"device,omitempty"`
	// Text is device source text; Format says how to parse it.
	Text   string `json:"text,omitempty"`
	Format string `json:"format,omitempty"`

	// Seed overrides the derived per-device seed (pnr only); 0 derives
	// DeriveSeed(BaseSeed, deviceName).
	Seed uint64 `json:"seed,omitempty"`
	// Placer and Router select engines by name (pnr only).
	Placer string `json:"placer,omitempty"`
	Router string `json:"router,omitempty"`
	// Utilization overrides the die utilization fraction (pnr only).
	Utilization float64 `json:"utilization,omitempty"`

	// To selects the conversion target, "mint" or "json" (convert only);
	// empty converts to the opposite of the input format.
	To string `json:"to,omitempty"`

	// Scale and Labels tune SVG rendering (render only).
	Scale  float64 `json:"scale,omitempty"`
	Labels bool    `json:"labels,omitempty"`
}

// decodeRequest parses the request envelope.
func decodeRequest(r *http.Request) (*request, error) {
	var req request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: decoding request body: %v", errBadRequest, err)
	}
	return &req, nil
}

// resolve loads the request's device through the same cli.Load path the
// command-line tools use. The raw JSON bytes (when the source was JSON)
// come back too, so the validate endpoint can schema-check them.
func resolve(r *http.Request, req *request) (*cli.Result, []byte, error) {
	ctx := r.Context()
	switch {
	case req.Bench != "":
		res, err := cli.Load(ctx, cli.Source{Name: req.Bench, Format: cli.FormatBench})
		return res, nil, err
	case len(req.Device) > 0:
		res, err := cli.Load(ctx, cli.Source{Name: "request", Format: cli.FormatJSON, Reader: bytes.NewReader(req.Device)})
		return res, req.Device, err
	case req.Text != "":
		format := cli.Format(req.Format)
		if format != cli.FormatJSON && format != cli.FormatMINT {
			return nil, nil, fmt.Errorf("%w: text requires format \"json\" or \"mint\", got %q", errBadRequest, req.Format)
		}
		res, err := cli.Load(ctx, cli.Source{Name: "request", Format: format, Reader: strings.NewReader(req.Text)})
		var raw []byte
		if format == cli.FormatJSON {
			raw = []byte(req.Text)
		}
		return res, raw, err
	default:
		return nil, nil, fmt.Errorf("%w: one of bench, device, or text is required", errBadRequest)
	}
}

// diagDTO is the JSON rendering of one validation diagnostic.
type diagDTO struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Path     string `json:"path"`
	Message  string `json:"message"`
}

type validateResponse struct {
	Device      string    `json:"device"`
	OK          bool      `json:"ok"`
	Errors      int       `json:"errors"`
	Warnings    int       `json:"warnings"`
	Diagnostics []diagDTO `json:"diagnostics"`
	// Schema lists raw-document schema issues (JSON sources only).
	Schema []string `json:"schema,omitempty"`
}

// handleValidate reports semantic diagnostics (and, for JSON sources,
// schema issues) as a 200 response; an invalid device is a successful
// validation, not a failed request.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest(r)
	if err != nil {
		return err
	}
	res, raw, err := resolve(r, req)
	if err != nil {
		return err
	}
	report := validate.Validate(res.Device)
	resp := validateResponse{
		Device:      res.Device.Name,
		OK:          report.OK(),
		Errors:      report.Errors(),
		Warnings:    report.Warnings(),
		Diagnostics: make([]diagDTO, 0, len(report.Diags)),
	}
	for _, d := range report.Diags {
		resp.Diagnostics = append(resp.Diagnostics, diagDTO{
			Severity: d.Severity.String(),
			Code:     string(d.Code),
			Path:     d.Path,
			Message:  d.Message,
		})
	}
	if raw != nil {
		sr := schema.Check(raw)
		for _, issue := range sr.Issues {
			resp.Schema = append(resp.Schema, issue.String())
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

type convertResponse struct {
	Target string `json:"target"`
	// Output is the converted MINT text (target "mint").
	Output string `json:"output,omitempty"`
	// Device is the converted ParchMint document (target "json").
	Device   json.RawMessage `json:"device,omitempty"`
	Lossless bool            `json:"lossless"`
	Notes    []string        `json:"notes,omitempty"`
}

// handleConvert translates between MINT and ParchMint JSON. Fidelity
// notes from both the load and the conversion are returned as values —
// exactly what the cli.Result redesign exists for.
func (s *Server) handleConvert(w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest(r)
	if err != nil {
		return err
	}
	res, _, err := resolve(r, req)
	if err != nil {
		return err
	}
	target := req.To
	if target == "" {
		if res.Format == cli.FormatMINT {
			target = "json"
		} else {
			target = "mint"
		}
	}
	notes := append([]string(nil), res.Notes...)
	switch target {
	case "mint":
		f, fid, err := mint.FromDevice(res.Device)
		if err != nil {
			return fmt.Errorf("serve: converting to MINT: %w", err)
		}
		notes = append(notes, fid.Notes...)
		return writeJSON(w, http.StatusOK, convertResponse{
			Target:   "mint",
			Output:   mint.Print(f),
			Lossless: len(notes) == 0,
			Notes:    notes,
		})
	case "json":
		data, err := core.Marshal(res.Device)
		if err != nil {
			return fmt.Errorf("serve: encoding device: %w", err)
		}
		return writeJSON(w, http.StatusOK, convertResponse{
			Target:   "json",
			Device:   data,
			Lossless: len(notes) == 0,
			Notes:    notes,
		})
	default:
		return fmt.Errorf("%w: to must be \"mint\" or \"json\", got %q", errBadRequest, req.To)
	}
}

type placeSummary struct {
	HPWL     int64 `json:"hpwl_um"`
	Area     int64 `json:"area_um2"`
	Overlaps int   `json:"overlaps"`
	Placed   int   `json:"placed"`
}

type routeSummary struct {
	Routed     int     `json:"routed"`
	Total      int     `json:"total"`
	Completion float64 `json:"completion_rate"`
	Length     int64   `json:"total_length_um"`
	Expansions int     `json:"expansions"`
	Rounds     int     `json:"rounds"`
}

type pnrResponse struct {
	Device json.RawMessage `json:"device"`
	Seed   uint64          `json:"seed"`
	Placer string          `json:"placer"`
	Router string          `json:"router"`
	Place  placeSummary    `json:"place"`
	Route  routeSummary    `json:"route"`
}

// handlePNR runs the full place-and-route flow inside the worker gate.
// The device must validate (422 otherwise); the effective seed is the
// request's, or DeriveSeed(BaseSeed, deviceName) — a pure function of the
// request body, never of arrival order.
func (s *Server) handlePNR(w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest(r)
	if err != nil {
		return err
	}
	res, _, err := resolve(r, req)
	if err != nil {
		return err
	}
	if verr := validate.Validate(res.Device).Err(); verr != nil {
		return verr
	}
	placer, err := place.EngineByName(req.Placer)
	if err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	router, err := route.EngineByName(req.Router)
	if err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	var resp pnrResponse
	err = s.gate.Do(r.Context(), res.Device.Name, func(derived uint64) error {
		seed := req.Seed
		if seed == 0 {
			seed = derived
		}
		opts := []pnr.Option{
			pnr.WithPlacer(placer),
			pnr.WithRouter(router),
			pnr.WithSeed(seed),
			pnr.WithObserver(s.stageObserver(res.Device.Name)),
		}
		if req.Utilization > 0 {
			opts = append(opts, pnr.WithUtilization(req.Utilization))
		}
		result, err := pnr.RunContext(r.Context(), res.Device, pnr.NewOptions(opts...))
		if err != nil {
			return err
		}
		data, err := core.Marshal(result.Device)
		if err != nil {
			return fmt.Errorf("serve: encoding device: %w", err)
		}
		resp = pnrResponse{
			Device: data,
			Seed:   seed,
			Placer: placer.Name(),
			Router: router.Name(),
			Place: placeSummary{
				HPWL:     result.PlaceMetrics.HPWL,
				Area:     result.PlaceMetrics.Area,
				Overlaps: result.PlaceMetrics.Overlaps,
				Placed:   result.PlaceMetrics.Placed,
			},
			Route: routeSummary{
				Routed:     result.RouteReport.Routed(),
				Total:      result.RouteReport.Total(),
				Completion: result.RouteReport.CompletionRate(),
				Length:     result.RouteReport.TotalLength(),
				Expansions: result.RouteReport.TotalExpansions(),
				Rounds:     result.RouteReport.Rounds,
			},
		}
		return nil
	})
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, resp)
}

// handleStats returns the paper's Table 1 characterization profile.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest(r)
	if err != nil {
		return err
	}
	res, _, err := resolve(r, req)
	if err != nil {
		return err
	}
	class := "custom"
	if req.Bench != "" {
		if b, err := bench.ByName(strings.TrimPrefix(req.Bench, "bench:")); err == nil {
			class = string(b.Class)
		}
	}
	return writeJSON(w, http.StatusOK, stats.ProfileDevice(res.Device, class))
}

// handleRender returns the device drawn as SVG. Devices without physical
// features are placed and routed first (inside the worker gate, with the
// device's derived seed) so any source renders.
func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest(r)
	if err != nil {
		return err
	}
	res, _, err := resolve(r, req)
	if err != nil {
		return err
	}
	d := res.Device
	if !d.HasFeatures() {
		err := s.gate.Do(r.Context(), d.Name, func(seed uint64) error {
			result, err := pnr.RunContext(r.Context(), d, pnr.NewOptions(
				pnr.WithSeed(seed),
				pnr.WithObserver(s.stageObserver(d.Name)),
			))
			if err != nil {
				return err
			}
			d = result.Device
			return nil
		})
		if err != nil {
			return err
		}
	}
	svg, err := render.SVG(d, render.Options{Scale: req.Scale, ShowLabels: req.Labels})
	if err != nil {
		return fmt.Errorf("serve: rendering: %w", err)
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, err = w.Write([]byte(svg))
	return err
}

// benchEntry is one row of the suite listing.
type benchEntry struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
	Components  int    `json:"components"`
	Connections int    `json:"connections"`
	Layers      int    `json:"layers"`
}

// handleBenchList lists the suite in canonical order, using the shared
// device cache (Benchmark.Device) so repeated listings build nothing.
func (s *Server) handleBenchList(w http.ResponseWriter, r *http.Request) error {
	suite := bench.Suite()
	entries := make([]benchEntry, 0, len(suite))
	for _, b := range suite {
		d := b.Device()
		entries = append(entries, benchEntry{
			Name:        b.Name,
			Class:       string(b.Class),
			Description: b.Description,
			Components:  len(d.Components),
			Connections: len(d.Connections),
			Layers:      len(d.Layers),
		})
	}
	return writeJSON(w, http.StatusOK, entries)
}

// handleBenchGet serves one benchmark's ParchMint document.
func (s *Server) handleBenchGet(w http.ResponseWriter, r *http.Request) error {
	b, err := bench.ByName(r.PathValue("name"))
	if err != nil {
		return err
	}
	data, err := core.Marshal(b.Device())
	if err != nil {
		return fmt.Errorf("serve: encoding device: %w", err)
	}
	w.Header().Set("Content-Type", "application/json")
	_, err = w.Write(append(data, '\n'))
	return err
}

type healthResponse struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	// Version and Revision identify the running build: the main module
	// version and the VCS commit, from runtime/debug.ReadBuildInfo.
	// Empty when the binary carries no build metadata (plain go test).
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// UptimeSeconds counts whole seconds since the server was constructed.
	UptimeSeconds int64 `json:"uptime_seconds"`
}

// buildInfo reads the main-module version and VCS revision baked into the
// binary; both come back empty when the build carries no metadata.
func buildInfo() (version, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return version, revision
}

// handleHealthz reports liveness, the gate's admission limit, and build
// identity. Status and workers are deterministic; uptime is the one field
// probes should expect to move.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	version, revision := buildInfo()
	return writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Workers:       s.gate.Workers(),
		Version:       version,
		Revision:      revision,
		GoVersion:     runtime.Version(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	})
}

// BaseSeedDefault is the service's default base seed, matching the
// experiment harness so bench-sourced service runs reproduce the CLI
// artifacts exactly.
const BaseSeedDefault = 2018
