package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/render"
	"repro/internal/route"
	"repro/internal/runner"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/validate"
)

// The pipeline operations. The names double as metric endpoint labels,
// batch item "op" values, and the first component of cache keys.
const (
	opValidate = "validate"
	opConvert  = "convert"
	opPNR      = "pnr"
	opStats    = "stats"
	opRender   = "render"
)

// cacheHeader reports how a cached endpoint's response was produced:
// "hit" (served from the LRU), "miss" (computed and stored), or
// "coalesced" (piggybacked on a concurrent identical computation). Absent
// when caching is disabled.
const cacheHeader = "X-Parchmint-Cache"

// request is the shared JSON envelope of the pipeline endpoints. Exactly
// one device source must be given: a suite benchmark name, an inline
// ParchMint JSON document, or device text with an explicit format.
type request struct {
	// Bench names a built-in suite benchmark ("rotary_pcr").
	Bench string `json:"bench,omitempty"`
	// Device is an inline ParchMint JSON document.
	Device json.RawMessage `json:"device,omitempty"`
	// Text is device source text; Format says how to parse it.
	Text   string `json:"text,omitempty"`
	Format string `json:"format,omitempty"`

	// Seed overrides the derived per-device seed (pnr only); 0 derives
	// DeriveSeed(BaseSeed, deviceName).
	Seed uint64 `json:"seed,omitempty"`
	// Placer and Router select engines by name (pnr only).
	Placer string `json:"placer,omitempty"`
	Router string `json:"router,omitempty"`
	// Utilization overrides the die utilization fraction (pnr only).
	Utilization float64 `json:"utilization,omitempty"`
	// Replicas overrides the server's parallel-tempering replica count
	// for the annealing placer (pnr and render only); 0 uses the server
	// default, values below 2 select the single-replica schedule.
	Replicas int `json:"replicas,omitempty"`

	// To selects the conversion target, "mint" or "json" (convert only);
	// empty converts to the opposite of the input format.
	To string `json:"to,omitempty"`

	// Scale and Labels tune SVG rendering (render only).
	Scale  float64 `json:"scale,omitempty"`
	Labels bool    `json:"labels,omitempty"`
}

// decodeRequest parses the request envelope: the whole body into the
// request's pooled buffer, then one pass of the hand-rolled parser. The
// returned request lives in the pooled state (its Device field aliases
// the body buffer) and is valid until the request completes.
func decodeRequest(r *http.Request) (*request, error) {
	body, err := requestBody(r)
	if err != nil {
		return nil, badBody("request body", err)
	}
	req := new(request)
	if st := stateFrom(r); st != nil {
		st.req = request{}
		req = &st.req
	}
	if err := parseRequest(body, req); err != nil {
		return nil, badBody("request body", err)
	}
	return req, nil
}

// resolve loads the request's device through the same cli.Load path the
// command-line tools use. The raw JSON bytes (when the source was JSON)
// come back too, so the validate endpoint can schema-check them.
func resolve(ctx context.Context, req *request) (*cli.Result, []byte, error) {
	switch {
	case req.Bench != "":
		res, err := cli.Load(ctx, cli.Source{Name: req.Bench, Format: cli.FormatBench})
		return res, nil, err
	case len(req.Device) > 0:
		res, err := cli.Load(ctx, cli.Source{Name: "request", Format: cli.FormatJSON, Reader: bytes.NewReader(req.Device)})
		return res, req.Device, err
	case req.Text != "":
		format := cli.Format(req.Format)
		if format != cli.FormatJSON && format != cli.FormatMINT {
			return nil, nil, fmt.Errorf("%w: text requires format \"json\" or \"mint\", got %q", errBadRequest, req.Format)
		}
		res, err := cli.Load(ctx, cli.Source{Name: "request", Format: format, Reader: strings.NewReader(req.Text)})
		var raw []byte
		if format == cli.FormatJSON {
			raw = []byte(req.Text)
		}
		return res, raw, err
	default:
		return nil, nil, fmt.Errorf("%w: one of bench, device, or text is required", errBadRequest)
	}
}

// jsonEntry materializes v exactly as writeJSON's default rendering —
// compact with a trailing newline — so cached replays are byte-identical
// to direct responses. The hot operations skip it for the hand encoders
// in respenc.go; it remains the generic fallback.
func jsonEntry(v any) (cache.Entry, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return cache.Entry{}, fmt.Errorf("serve: encoding response: %w", err)
	}
	return cache.Entry{ContentType: "application/json", Body: append(data, '\n')}, nil
}

// serveOp adapts one pipeline operation into an apiHandler: decode the
// envelope, validate it against the shared operation table, run the
// operation through the result cache, and replay the materialized entry.
// In cluster mode the request is first sharded by its content address:
// a request landing on a non-owner takes one forwarding hop to the key's
// owner (where its cache entries, coalescing, and journal records
// concentrate), with local execution as the fallback when the hop fails.
func (s *Server) serveOp(name string) apiHandler {
	op := mustOperation(name)
	return func(w http.ResponseWriter, r *http.Request) error {
		req, err := decodeRequest(r)
		if err != nil {
			return err
		}
		if err := op.validate(req); err != nil {
			return err
		}
		var key string
		if s.cluster != nil {
			key = s.cacheKey(op.Name, req)
			owner := s.cluster.Route(key)
			w.Header()[cluster.ShardHeader] = []string{owner}
			if s.forwardable(r, owner) {
				if env, eerr := appendRequestJSON(nil, req); eerr == nil &&
					s.forwardTo(w, r, owner, "application/json", env) {
					return nil
				}
			}
		}
		ent, outcome, err := s.runCachedKey(r.Context(), op, req, key)
		if err != nil {
			return err
		}
		body := ent.Body
		if requestPretty(r) && ent.ContentType == "application/json" {
			if body, err = indentEntry(ent.Body); err != nil {
				return err
			}
		}
		h := w.Header()
		if outcome != "" {
			h[cacheHeader] = outcomeHeaderValue(outcome)
		}
		h["Content-Type"] = contentTypeValue(ent.ContentType)
		w.WriteHeader(http.StatusOK)
		_, err = w.Write(body)
		return err
	}
}

// Shared header slices for the three cache outcomes; see cacheHeader.
var outcomeHeaderVals = map[string][]string{
	cache.Hit.String():       {cache.Hit.String()},
	cache.Miss.String():      {cache.Miss.String()},
	cache.Coalesced.String(): {cache.Coalesced.String()},
}

func outcomeHeaderValue(outcome string) []string {
	if v, ok := outcomeHeaderVals[outcome]; ok {
		return v
	}
	return []string{outcome}
}

// runCached executes op through the content-addressed result cache:
// concurrent identical requests coalesce onto one computation, repeated
// ones replay stored bytes. With caching disabled it computes directly
// and reports no outcome. Only successful responses are ever stored, so
// error statuses are recomputed per request. The warm path — key
// derivation, probe, outcome accounting — allocates only the key string:
// a hit bypasses Do (no compute closure) and records through a pre-bound
// metric cell.
func (s *Server) runCached(ctx context.Context, op *Operation, req *request) (cache.Entry, string, error) {
	return s.runCachedKey(ctx, op, req, "")
}

// runCachedKey is runCached with an optionally precomputed key (the
// sharding path derives it before routing; "" derives it here). In
// cluster mode a local miss probes the key's owner before computing:
// the owner's bytes are byte-identical to a local recomputation by the
// determinism contract, so an adopted entry is reported as a hit.
func (s *Server) runCachedKey(ctx context.Context, op *Operation, req *request, key string) (cache.Entry, string, error) {
	if s.cache == nil {
		ent, err := op.run(s, ctx, req)
		return ent, "", err
	}
	if key == "" {
		key = s.cacheKey(op.Name, req)
	}
	if ent, ok := s.cache.Lookup(key); ok {
		s.mCacheCells[op.Name][cache.Hit].Inc()
		return ent, cache.Hit.String(), nil
	}
	if s.cluster != nil {
		if pe, ok := s.cluster.ProbeOwner(ctx, key); ok {
			ent := cache.Entry{ContentType: pe.ContentType, Body: pe.Body}
			s.cache.Put(key, ent)
			s.mCacheCells[op.Name][cache.Hit].Inc()
			return ent, cache.Hit.String(), nil
		}
	}
	ent, outcome, err := s.cache.Do(ctx, key, func() (cache.Entry, error) {
		return op.run(s, ctx, req)
	})
	if err != nil {
		return cache.Entry{}, "", err
	}
	s.mCacheCells[op.Name][outcome].Inc()
	return ent, outcome.String(), nil
}

// replicas resolves the effective annealing replica count for a request:
// the request's explicit value, else the server default.
func (s *Server) replicas(req *request) int {
	if req.Replicas != 0 {
		return req.Replicas
	}
	return s.cfg.Replicas
}

// gateDo admits fn through the worker gate, translating gate saturation
// into the service's typed overload error (429 + Retry-After).
func (s *Server) gateDo(ctx context.Context, id string, fn func(seed uint64) error) error {
	err := s.gate.Do(ctx, id, fn)
	var sat *runner.SaturatedError
	if errors.As(err, &sat) {
		return &OverloadedError{RetryAfter: retryAfterHint(sat.EstimatedWait), cause: sat}
	}
	return err
}

// diagDTO is the JSON rendering of one validation diagnostic.
type diagDTO struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Path     string `json:"path"`
	Message  string `json:"message"`
}

type validateResponse struct {
	Device      string    `json:"device"`
	OK          bool      `json:"ok"`
	Errors      int       `json:"errors"`
	Warnings    int       `json:"warnings"`
	Diagnostics []diagDTO `json:"diagnostics"`
	// Schema lists raw-document schema issues (JSON sources only).
	Schema []string `json:"schema,omitempty"`
}

// execValidate reports semantic diagnostics (and, for JSON sources,
// schema issues) as a 200 response; an invalid device is a successful
// validation, not a failed request.
func (s *Server) execValidate(ctx context.Context, req *request) (cache.Entry, error) {
	res, raw, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	report := validate.Validate(res.Device)
	resp := validateResponse{
		Device:      res.Device.Name,
		OK:          report.OK(),
		Errors:      report.Errors(),
		Warnings:    report.Warnings(),
		Diagnostics: make([]diagDTO, 0, len(report.Diags)),
	}
	for _, d := range report.Diags {
		resp.Diagnostics = append(resp.Diagnostics, diagDTO{
			Severity: d.Severity.String(),
			Code:     string(d.Code),
			Path:     d.Path,
			Message:  d.Message,
		})
	}
	if raw != nil {
		sr := schema.Check(raw)
		for _, issue := range sr.Issues {
			resp.Schema = append(resp.Schema, issue.String())
		}
	}
	sc := encScratchPool.Get().(*[]byte)
	b := appendValidateResponse((*sc)[:0], &resp)
	ent := entryFromScratch(b)
	*sc = b[:0]
	encScratchPool.Put(sc)
	return ent, nil
}

type convertResponse struct {
	Target string `json:"target"`
	// Output is the converted MINT text (target "mint").
	Output string `json:"output,omitempty"`
	// Device is the converted ParchMint document (target "json").
	Device   json.RawMessage `json:"device,omitempty"`
	Lossless bool            `json:"lossless"`
	Notes    []string        `json:"notes,omitempty"`
}

// execConvert translates between MINT and ParchMint JSON. Fidelity
// notes from both the load and the conversion are returned as values —
// exactly what the cli.Result redesign exists for.
func (s *Server) execConvert(ctx context.Context, req *request) (cache.Entry, error) {
	res, _, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	target := req.To
	if target == "" {
		if res.Format == cli.FormatMINT {
			target = "json"
		} else {
			target = "mint"
		}
	}
	notes := append([]string(nil), res.Notes...)
	var resp convertResponse
	switch target {
	case "mint":
		f, fid, err := mint.FromDevice(res.Device)
		if err != nil {
			return cache.Entry{}, fmt.Errorf("serve: converting to MINT: %w", err)
		}
		notes = append(notes, fid.Notes...)
		resp = convertResponse{
			Target:   "mint",
			Output:   mint.Print(f),
			Lossless: len(notes) == 0,
			Notes:    notes,
		}
	case "json":
		// The canonical compact encoding — the same bytes json.Marshal
		// would produce for the device, so the embedded document is
		// byte-identical to what the reflective encoder emitted.
		data, err := core.MarshalCanonical(res.Device)
		if err != nil {
			return cache.Entry{}, fmt.Errorf("serve: encoding device: %w", err)
		}
		resp = convertResponse{
			Target:   "json",
			Device:   data,
			Lossless: len(notes) == 0,
			Notes:    notes,
		}
	default:
		return cache.Entry{}, fmt.Errorf("%w: to must be \"mint\" or \"json\", got %q", errBadRequest, req.To)
	}
	sc := encScratchPool.Get().(*[]byte)
	b := appendConvertResponse((*sc)[:0], &resp)
	ent := entryFromScratch(b)
	*sc = b[:0]
	encScratchPool.Put(sc)
	return ent, nil
}

type placeSummary struct {
	HPWL     int64 `json:"hpwl_um"`
	Area     int64 `json:"area_um2"`
	Overlaps int   `json:"overlaps"`
	Placed   int   `json:"placed"`
}

type routeSummary struct {
	Routed     int     `json:"routed"`
	Total      int     `json:"total"`
	Completion float64 `json:"completion_rate"`
	Length     int64   `json:"total_length_um"`
	Expansions int     `json:"expansions"`
	Rounds     int     `json:"rounds"`
}

type pnrResponse struct {
	Device json.RawMessage `json:"device"`
	Seed   uint64          `json:"seed"`
	Placer string          `json:"placer"`
	Router string          `json:"router"`
	Place  placeSummary    `json:"place"`
	Route  routeSummary    `json:"route"`
}

// execPNR runs the full place-and-route flow inside the worker gate.
// The device must validate (422 otherwise); the effective seed is the
// request's, or DeriveSeed(BaseSeed, deviceName) — a pure function of the
// request body, never of arrival order.
func (s *Server) execPNR(ctx context.Context, req *request) (cache.Entry, error) {
	res, _, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	if verr := validate.Validate(res.Device).Err(); verr != nil {
		return cache.Entry{}, verr
	}
	placer, err := place.EngineByName(req.Placer)
	if err != nil {
		return cache.Entry{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	router, err := route.EngineByName(req.Router)
	if err != nil {
		return cache.Entry{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	var resp pnrResponse
	err = s.gateDo(ctx, res.Device.Name, func(derived uint64) error {
		seed := req.Seed
		if seed == 0 {
			seed = derived
		}
		opts := []pnr.Option{
			pnr.WithPlacer(placer),
			pnr.WithRouter(router),
			pnr.WithSeed(seed),
			pnr.WithReplicas(s.replicas(req)),
			pnr.WithParallelNets(s.cfg.RouteWorkers),
			pnr.WithObserver(s.stageObserver(ctx, res.Device.Name)),
		}
		if req.Utilization > 0 {
			opts = append(opts, pnr.WithUtilization(req.Utilization))
		}
		result, err := pnr.RunContext(ctx, res.Device, pnr.NewOptions(opts...))
		if err != nil {
			return err
		}
		data, err := core.MarshalCanonical(result.Device)
		if err != nil {
			return fmt.Errorf("serve: encoding device: %w", err)
		}
		resp = pnrResponse{
			Device: data,
			Seed:   seed,
			Placer: placer.Name(),
			Router: router.Name(),
			Place: placeSummary{
				HPWL:     result.PlaceMetrics.HPWL,
				Area:     result.PlaceMetrics.Area,
				Overlaps: result.PlaceMetrics.Overlaps,
				Placed:   result.PlaceMetrics.Placed,
			},
			Route: routeSummary{
				Routed:     result.RouteReport.Routed(),
				Total:      result.RouteReport.Total(),
				Completion: result.RouteReport.CompletionRate(),
				Length:     result.RouteReport.TotalLength(),
				Expansions: result.RouteReport.TotalExpansions(),
				Rounds:     result.RouteReport.Rounds,
			},
		}
		return nil
	})
	if err != nil {
		return cache.Entry{}, err
	}
	sc := encScratchPool.Get().(*[]byte)
	b, err := appendPNRResponse((*sc)[:0], &resp)
	if err != nil {
		encScratchPool.Put(sc)
		return cache.Entry{}, fmt.Errorf("serve: encoding response: %w", err)
	}
	ent := entryFromScratch(b)
	*sc = b[:0]
	encScratchPool.Put(sc)
	return ent, nil
}

// execStats returns the paper's Table 1 characterization profile.
func (s *Server) execStats(ctx context.Context, req *request) (cache.Entry, error) {
	res, _, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	class := "custom"
	if req.Bench != "" {
		if b, err := bench.ByName(strings.TrimPrefix(req.Bench, "bench:")); err == nil {
			class = string(b.Class)
		}
	}
	profile := stats.ProfileDevice(res.Device, class)
	sc := encScratchPool.Get().(*[]byte)
	b, err := appendStatsProfile((*sc)[:0], &profile)
	if err != nil {
		encScratchPool.Put(sc)
		return cache.Entry{}, fmt.Errorf("serve: encoding response: %w", err)
	}
	ent := entryFromScratch(b)
	*sc = b[:0]
	encScratchPool.Put(sc)
	return ent, nil
}

// execRender returns the device drawn as SVG. Devices without physical
// features are placed and routed first (inside the worker gate, with the
// device's derived seed) so any source renders.
func (s *Server) execRender(ctx context.Context, req *request) (cache.Entry, error) {
	res, _, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	d := res.Device
	if !d.HasFeatures() {
		err := s.gateDo(ctx, d.Name, func(seed uint64) error {
			result, err := pnr.RunContext(ctx, d, pnr.NewOptions(
				pnr.WithSeed(seed),
				pnr.WithReplicas(s.replicas(req)),
				pnr.WithParallelNets(s.cfg.RouteWorkers),
				pnr.WithObserver(s.stageObserver(ctx, d.Name)),
			))
			if err != nil {
				return err
			}
			d = result.Device
			return nil
		})
		if err != nil {
			return cache.Entry{}, err
		}
	}
	svg, err := render.SVG(d, render.Options{Scale: req.Scale, ShowLabels: req.Labels})
	if err != nil {
		return cache.Entry{}, fmt.Errorf("serve: rendering: %w", err)
	}
	return cache.Entry{ContentType: "image/svg+xml", Body: []byte(svg)}, nil
}

// benchEntry is one row of the suite listing.
type benchEntry struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
	Components  int    `json:"components"`
	Connections int    `json:"connections"`
	Layers      int    `json:"layers"`
}

// benchListResponse is the suite listing envelope. Total counts the
// items after filtering, so paging clients can trust it.
type benchListResponse struct {
	Items []benchEntry `json:"items"`
	Total int          `json:"total"`
}

// handleBenchList lists the suite in canonical order, using the shared
// device cache (Benchmark.Device) so repeated listings build nothing.
// ?prefix= narrows the listing to benchmarks whose name starts with the
// prefix; ?format=legacy selects the deprecated bare-array rendering the
// listing used before the {items, total} envelope.
func (s *Server) handleBenchList(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	prefix := q.Get("prefix")
	suite := bench.Suite()
	entries := make([]benchEntry, 0, len(suite))
	for _, b := range suite {
		if !strings.HasPrefix(b.Name, prefix) {
			continue
		}
		d := b.Device()
		entries = append(entries, benchEntry{
			Name:        b.Name,
			Class:       string(b.Class),
			Description: b.Description,
			Components:  len(d.Components),
			Connections: len(d.Connections),
			Layers:      len(d.Layers),
		})
	}
	switch format := q.Get("format"); format {
	case "":
		return writeJSON(w, r, http.StatusOK, benchListResponse{Items: entries, Total: len(entries)})
	case "legacy":
		return writeJSON(w, r, http.StatusOK, entries)
	default:
		return fmt.Errorf("%w: format must be \"legacy\" or omitted, got %q", errBadRequest, format)
	}
}

// handleBenchGet serves one benchmark's ParchMint document.
func (s *Server) handleBenchGet(w http.ResponseWriter, r *http.Request) error {
	b, err := bench.ByName(r.PathValue("name"))
	if err != nil {
		return err
	}
	data, err := core.MarshalCanonical(b.Device())
	if err != nil {
		return fmt.Errorf("serve: encoding device: %w", err)
	}
	body := append(data, '\n')
	if requestPretty(r) {
		if body, err = indentEntry(body); err != nil {
			return err
		}
	}
	w.Header()["Content-Type"] = ctJSONVal
	_, err = w.Write(body)
	return err
}

type healthResponse struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	// Version and Revision identify the running build: the main module
	// version and the VCS commit, from runtime/debug.ReadBuildInfo.
	// Empty when the binary carries no build metadata (plain go test).
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// UptimeSeconds counts whole seconds since the server was constructed.
	UptimeSeconds int64 `json:"uptime_seconds"`
}

// buildInfo reads the main-module version and VCS revision baked into the
// binary; both come back empty when the build carries no metadata.
func buildInfo() (version, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return version, revision
}

// handleHealthz reports liveness, the gate's admission limit, and build
// identity. Status and workers are deterministic; uptime is the one field
// probes should expect to move.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	version, revision := buildInfo()
	return writeJSON(w, r, http.StatusOK, healthResponse{
		Status:        "ok",
		Workers:       s.gate.Workers(),
		Version:       version,
		Revision:      revision,
		GoVersion:     runtime.Version(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	})
}

// BaseSeedDefault is the service's default base seed, matching the
// experiment harness so bench-sourced service runs reproduce the CLI
// artifacts exactly.
const BaseSeedDefault = 2018
