package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/render"
	"repro/internal/route"
	"repro/internal/runner"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/validate"
)

// The pipeline operations. The names double as metric endpoint labels,
// batch item "op" values, and the first component of cache keys.
const (
	opValidate = "validate"
	opConvert  = "convert"
	opPNR      = "pnr"
	opStats    = "stats"
	opRender   = "render"
)

// cacheHeader reports how a cached endpoint's response was produced:
// "hit" (served from the LRU), "miss" (computed and stored), or
// "coalesced" (piggybacked on a concurrent identical computation). Absent
// when caching is disabled.
const cacheHeader = "X-Parchmint-Cache"

// request is the shared JSON envelope of the pipeline endpoints. Exactly
// one device source must be given: a suite benchmark name, an inline
// ParchMint JSON document, or device text with an explicit format.
type request struct {
	// Bench names a built-in suite benchmark ("rotary_pcr").
	Bench string `json:"bench,omitempty"`
	// Device is an inline ParchMint JSON document.
	Device json.RawMessage `json:"device,omitempty"`
	// Text is device source text; Format says how to parse it.
	Text   string `json:"text,omitempty"`
	Format string `json:"format,omitempty"`

	// Seed overrides the derived per-device seed (pnr only); 0 derives
	// DeriveSeed(BaseSeed, deviceName).
	Seed uint64 `json:"seed,omitempty"`
	// Placer and Router select engines by name (pnr only).
	Placer string `json:"placer,omitempty"`
	Router string `json:"router,omitempty"`
	// Utilization overrides the die utilization fraction (pnr only).
	Utilization float64 `json:"utilization,omitempty"`
	// Replicas overrides the server's parallel-tempering replica count
	// for the annealing placer (pnr and render only); 0 uses the server
	// default, values below 2 select the single-replica schedule.
	Replicas int `json:"replicas,omitempty"`

	// To selects the conversion target, "mint" or "json" (convert only);
	// empty converts to the opposite of the input format.
	To string `json:"to,omitempty"`

	// Scale and Labels tune SVG rendering (render only).
	Scale  float64 `json:"scale,omitempty"`
	Labels bool    `json:"labels,omitempty"`
}

// decodeRequest parses the request envelope.
func decodeRequest(r *http.Request) (*request, error) {
	var req request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: decoding request body: %v", errBadRequest, err)
	}
	return &req, nil
}

// resolve loads the request's device through the same cli.Load path the
// command-line tools use. The raw JSON bytes (when the source was JSON)
// come back too, so the validate endpoint can schema-check them.
func resolve(ctx context.Context, req *request) (*cli.Result, []byte, error) {
	switch {
	case req.Bench != "":
		res, err := cli.Load(ctx, cli.Source{Name: req.Bench, Format: cli.FormatBench})
		return res, nil, err
	case len(req.Device) > 0:
		res, err := cli.Load(ctx, cli.Source{Name: "request", Format: cli.FormatJSON, Reader: bytes.NewReader(req.Device)})
		return res, req.Device, err
	case req.Text != "":
		format := cli.Format(req.Format)
		if format != cli.FormatJSON && format != cli.FormatMINT {
			return nil, nil, fmt.Errorf("%w: text requires format \"json\" or \"mint\", got %q", errBadRequest, req.Format)
		}
		res, err := cli.Load(ctx, cli.Source{Name: "request", Format: format, Reader: strings.NewReader(req.Text)})
		var raw []byte
		if format == cli.FormatJSON {
			raw = []byte(req.Text)
		}
		return res, raw, err
	default:
		return nil, nil, fmt.Errorf("%w: one of bench, device, or text is required", errBadRequest)
	}
}

// jsonEntry materializes v exactly as writeJSON would have rendered it,
// so cached replays are byte-identical to direct responses.
func jsonEntry(v any) (cache.Entry, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return cache.Entry{}, fmt.Errorf("serve: encoding response: %w", err)
	}
	return cache.Entry{ContentType: "application/json", Body: append(data, '\n')}, nil
}

// serveOp adapts one pipeline operation into an apiHandler: decode the
// envelope, validate it against the shared operation table, run the
// operation through the result cache, and replay the materialized entry.
func (s *Server) serveOp(name string) apiHandler {
	op := mustOperation(name)
	return func(w http.ResponseWriter, r *http.Request) error {
		req, err := decodeRequest(r)
		if err != nil {
			return err
		}
		if err := op.validate(req); err != nil {
			return err
		}
		ent, outcome, err := s.runCached(r.Context(), op, req)
		if err != nil {
			return err
		}
		if outcome != "" {
			w.Header().Set(cacheHeader, outcome)
		}
		w.Header().Set("Content-Type", ent.ContentType)
		w.WriteHeader(http.StatusOK)
		_, err = w.Write(ent.Body)
		return err
	}
}

// runCached executes op through the content-addressed result cache:
// concurrent identical requests coalesce onto one computation, repeated
// ones replay stored bytes. With caching disabled it computes directly
// and reports no outcome. Only successful responses are ever stored, so
// error statuses are recomputed per request.
func (s *Server) runCached(ctx context.Context, op *Operation, req *request) (cache.Entry, string, error) {
	if s.cache == nil {
		ent, err := op.run(s, ctx, req)
		return ent, "", err
	}
	ent, outcome, err := s.cache.Do(ctx, s.cacheKey(op.Name, req), func() (cache.Entry, error) {
		return op.run(s, ctx, req)
	})
	if err != nil {
		return cache.Entry{}, "", err
	}
	s.mCacheReq.Inc(op.Name, outcome.String())
	return ent, outcome.String(), nil
}

// cacheKey derives the content address of one computation: SHA-256 over
// the operation, the canonicalized request body, and the resolved seed.
// Canonicalization re-marshals the decoded envelope, so formatting
// differences and unknown fields — which cannot influence the output —
// map to the same address, while every field that does influence it
// (device source bytes, engine options, render options) is covered. The
// seed component folds the explicit request seed or, for derived seeds,
// the server's base seed (the device name completing the derivation is
// already pinned by the canonical body), so servers seeded differently
// never share entries.
func (s *Server) cacheKey(op string, req *request) string {
	canon, err := json.Marshal(req)
	if err != nil {
		// The envelope round-trips by construction; treat failure as a
		// never-matching key rather than a request failure.
		canon = []byte(fmt.Sprintf("unmarshalable:%p", req))
	}
	seed := req.Seed
	if seed == 0 {
		seed = runner.DeriveSeed(s.cfg.BaseSeed, req.Bench)
	}
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seed)
	// The replica count selects a different annealing search, so for the
	// operations it reaches it must be part of the address. It folds in
	// only when a multi-replica schedule is effective: single-replica
	// keys stay byte-for-byte what they were before the knob existed, so
	// existing entries (and servers that never set it) are undisturbed.
	// RouteWorkers, by contrast, never appears in any key: parallel
	// routing is byte-identical to sequential.
	if n := s.replicas(req); n > 1 && (op == opPNR || op == opRender) {
		var rb [8]byte
		binary.LittleEndian.PutUint64(rb[:], uint64(n))
		return cache.Key([]byte(op), canon, sb[:], rb[:])
	}
	return cache.Key([]byte(op), canon, sb[:])
}

// replicas resolves the effective annealing replica count for a request:
// the request's explicit value, else the server default.
func (s *Server) replicas(req *request) int {
	if req.Replicas != 0 {
		return req.Replicas
	}
	return s.cfg.Replicas
}

// gateDo admits fn through the worker gate, translating gate saturation
// into the service's typed overload error (429 + Retry-After).
func (s *Server) gateDo(ctx context.Context, id string, fn func(seed uint64) error) error {
	err := s.gate.Do(ctx, id, fn)
	var sat *runner.SaturatedError
	if errors.As(err, &sat) {
		return &OverloadedError{RetryAfter: retryAfterHint(sat.EstimatedWait), cause: sat}
	}
	return err
}

// diagDTO is the JSON rendering of one validation diagnostic.
type diagDTO struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Path     string `json:"path"`
	Message  string `json:"message"`
}

type validateResponse struct {
	Device      string    `json:"device"`
	OK          bool      `json:"ok"`
	Errors      int       `json:"errors"`
	Warnings    int       `json:"warnings"`
	Diagnostics []diagDTO `json:"diagnostics"`
	// Schema lists raw-document schema issues (JSON sources only).
	Schema []string `json:"schema,omitempty"`
}

// execValidate reports semantic diagnostics (and, for JSON sources,
// schema issues) as a 200 response; an invalid device is a successful
// validation, not a failed request.
func (s *Server) execValidate(ctx context.Context, req *request) (cache.Entry, error) {
	res, raw, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	report := validate.Validate(res.Device)
	resp := validateResponse{
		Device:      res.Device.Name,
		OK:          report.OK(),
		Errors:      report.Errors(),
		Warnings:    report.Warnings(),
		Diagnostics: make([]diagDTO, 0, len(report.Diags)),
	}
	for _, d := range report.Diags {
		resp.Diagnostics = append(resp.Diagnostics, diagDTO{
			Severity: d.Severity.String(),
			Code:     string(d.Code),
			Path:     d.Path,
			Message:  d.Message,
		})
	}
	if raw != nil {
		sr := schema.Check(raw)
		for _, issue := range sr.Issues {
			resp.Schema = append(resp.Schema, issue.String())
		}
	}
	return jsonEntry(resp)
}

type convertResponse struct {
	Target string `json:"target"`
	// Output is the converted MINT text (target "mint").
	Output string `json:"output,omitempty"`
	// Device is the converted ParchMint document (target "json").
	Device   json.RawMessage `json:"device,omitempty"`
	Lossless bool            `json:"lossless"`
	Notes    []string        `json:"notes,omitempty"`
}

// execConvert translates between MINT and ParchMint JSON. Fidelity
// notes from both the load and the conversion are returned as values —
// exactly what the cli.Result redesign exists for.
func (s *Server) execConvert(ctx context.Context, req *request) (cache.Entry, error) {
	res, _, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	target := req.To
	if target == "" {
		if res.Format == cli.FormatMINT {
			target = "json"
		} else {
			target = "mint"
		}
	}
	notes := append([]string(nil), res.Notes...)
	switch target {
	case "mint":
		f, fid, err := mint.FromDevice(res.Device)
		if err != nil {
			return cache.Entry{}, fmt.Errorf("serve: converting to MINT: %w", err)
		}
		notes = append(notes, fid.Notes...)
		return jsonEntry(convertResponse{
			Target:   "mint",
			Output:   mint.Print(f),
			Lossless: len(notes) == 0,
			Notes:    notes,
		})
	case "json":
		data, err := core.Marshal(res.Device)
		if err != nil {
			return cache.Entry{}, fmt.Errorf("serve: encoding device: %w", err)
		}
		return jsonEntry(convertResponse{
			Target:   "json",
			Device:   data,
			Lossless: len(notes) == 0,
			Notes:    notes,
		})
	default:
		return cache.Entry{}, fmt.Errorf("%w: to must be \"mint\" or \"json\", got %q", errBadRequest, req.To)
	}
}

type placeSummary struct {
	HPWL     int64 `json:"hpwl_um"`
	Area     int64 `json:"area_um2"`
	Overlaps int   `json:"overlaps"`
	Placed   int   `json:"placed"`
}

type routeSummary struct {
	Routed     int     `json:"routed"`
	Total      int     `json:"total"`
	Completion float64 `json:"completion_rate"`
	Length     int64   `json:"total_length_um"`
	Expansions int     `json:"expansions"`
	Rounds     int     `json:"rounds"`
}

type pnrResponse struct {
	Device json.RawMessage `json:"device"`
	Seed   uint64          `json:"seed"`
	Placer string          `json:"placer"`
	Router string          `json:"router"`
	Place  placeSummary    `json:"place"`
	Route  routeSummary    `json:"route"`
}

// execPNR runs the full place-and-route flow inside the worker gate.
// The device must validate (422 otherwise); the effective seed is the
// request's, or DeriveSeed(BaseSeed, deviceName) — a pure function of the
// request body, never of arrival order.
func (s *Server) execPNR(ctx context.Context, req *request) (cache.Entry, error) {
	res, _, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	if verr := validate.Validate(res.Device).Err(); verr != nil {
		return cache.Entry{}, verr
	}
	placer, err := place.EngineByName(req.Placer)
	if err != nil {
		return cache.Entry{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	router, err := route.EngineByName(req.Router)
	if err != nil {
		return cache.Entry{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	var resp pnrResponse
	err = s.gateDo(ctx, res.Device.Name, func(derived uint64) error {
		seed := req.Seed
		if seed == 0 {
			seed = derived
		}
		opts := []pnr.Option{
			pnr.WithPlacer(placer),
			pnr.WithRouter(router),
			pnr.WithSeed(seed),
			pnr.WithReplicas(s.replicas(req)),
			pnr.WithParallelNets(s.cfg.RouteWorkers),
			pnr.WithObserver(s.stageObserver(ctx, res.Device.Name)),
		}
		if req.Utilization > 0 {
			opts = append(opts, pnr.WithUtilization(req.Utilization))
		}
		result, err := pnr.RunContext(ctx, res.Device, pnr.NewOptions(opts...))
		if err != nil {
			return err
		}
		data, err := core.Marshal(result.Device)
		if err != nil {
			return fmt.Errorf("serve: encoding device: %w", err)
		}
		resp = pnrResponse{
			Device: data,
			Seed:   seed,
			Placer: placer.Name(),
			Router: router.Name(),
			Place: placeSummary{
				HPWL:     result.PlaceMetrics.HPWL,
				Area:     result.PlaceMetrics.Area,
				Overlaps: result.PlaceMetrics.Overlaps,
				Placed:   result.PlaceMetrics.Placed,
			},
			Route: routeSummary{
				Routed:     result.RouteReport.Routed(),
				Total:      result.RouteReport.Total(),
				Completion: result.RouteReport.CompletionRate(),
				Length:     result.RouteReport.TotalLength(),
				Expansions: result.RouteReport.TotalExpansions(),
				Rounds:     result.RouteReport.Rounds,
			},
		}
		return nil
	})
	if err != nil {
		return cache.Entry{}, err
	}
	return jsonEntry(resp)
}

// execStats returns the paper's Table 1 characterization profile.
func (s *Server) execStats(ctx context.Context, req *request) (cache.Entry, error) {
	res, _, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	class := "custom"
	if req.Bench != "" {
		if b, err := bench.ByName(strings.TrimPrefix(req.Bench, "bench:")); err == nil {
			class = string(b.Class)
		}
	}
	return jsonEntry(stats.ProfileDevice(res.Device, class))
}

// execRender returns the device drawn as SVG. Devices without physical
// features are placed and routed first (inside the worker gate, with the
// device's derived seed) so any source renders.
func (s *Server) execRender(ctx context.Context, req *request) (cache.Entry, error) {
	res, _, err := resolve(ctx, req)
	if err != nil {
		return cache.Entry{}, err
	}
	d := res.Device
	if !d.HasFeatures() {
		err := s.gateDo(ctx, d.Name, func(seed uint64) error {
			result, err := pnr.RunContext(ctx, d, pnr.NewOptions(
				pnr.WithSeed(seed),
				pnr.WithReplicas(s.replicas(req)),
				pnr.WithParallelNets(s.cfg.RouteWorkers),
				pnr.WithObserver(s.stageObserver(ctx, d.Name)),
			))
			if err != nil {
				return err
			}
			d = result.Device
			return nil
		})
		if err != nil {
			return cache.Entry{}, err
		}
	}
	svg, err := render.SVG(d, render.Options{Scale: req.Scale, ShowLabels: req.Labels})
	if err != nil {
		return cache.Entry{}, fmt.Errorf("serve: rendering: %w", err)
	}
	return cache.Entry{ContentType: "image/svg+xml", Body: []byte(svg)}, nil
}

// benchEntry is one row of the suite listing.
type benchEntry struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
	Components  int    `json:"components"`
	Connections int    `json:"connections"`
	Layers      int    `json:"layers"`
}

// benchListResponse is the suite listing envelope. Total counts the
// items after filtering, so paging clients can trust it.
type benchListResponse struct {
	Items []benchEntry `json:"items"`
	Total int          `json:"total"`
}

// handleBenchList lists the suite in canonical order, using the shared
// device cache (Benchmark.Device) so repeated listings build nothing.
// ?prefix= narrows the listing to benchmarks whose name starts with the
// prefix; ?format=legacy selects the deprecated bare-array rendering the
// listing used before the {items, total} envelope.
func (s *Server) handleBenchList(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	prefix := q.Get("prefix")
	suite := bench.Suite()
	entries := make([]benchEntry, 0, len(suite))
	for _, b := range suite {
		if !strings.HasPrefix(b.Name, prefix) {
			continue
		}
		d := b.Device()
		entries = append(entries, benchEntry{
			Name:        b.Name,
			Class:       string(b.Class),
			Description: b.Description,
			Components:  len(d.Components),
			Connections: len(d.Connections),
			Layers:      len(d.Layers),
		})
	}
	switch format := q.Get("format"); format {
	case "":
		return writeJSON(w, http.StatusOK, benchListResponse{Items: entries, Total: len(entries)})
	case "legacy":
		return writeJSON(w, http.StatusOK, entries)
	default:
		return fmt.Errorf("%w: format must be \"legacy\" or omitted, got %q", errBadRequest, format)
	}
}

// handleBenchGet serves one benchmark's ParchMint document.
func (s *Server) handleBenchGet(w http.ResponseWriter, r *http.Request) error {
	b, err := bench.ByName(r.PathValue("name"))
	if err != nil {
		return err
	}
	data, err := core.Marshal(b.Device())
	if err != nil {
		return fmt.Errorf("serve: encoding device: %w", err)
	}
	w.Header().Set("Content-Type", "application/json")
	_, err = w.Write(append(data, '\n'))
	return err
}

type healthResponse struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	// Version and Revision identify the running build: the main module
	// version and the VCS commit, from runtime/debug.ReadBuildInfo.
	// Empty when the binary carries no build metadata (plain go test).
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// UptimeSeconds counts whole seconds since the server was constructed.
	UptimeSeconds int64 `json:"uptime_seconds"`
}

// buildInfo reads the main-module version and VCS revision baked into the
// binary; both come back empty when the build carries no metadata.
func buildInfo() (version, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return version, revision
}

// handleHealthz reports liveness, the gate's admission limit, and build
// identity. Status and workers are deterministic; uptime is the one field
// probes should expect to move.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	version, revision := buildInfo()
	return writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Workers:       s.gate.Workers(),
		Version:       version,
		Revision:      revision,
		GoVersion:     runtime.Version(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	})
}

// BaseSeedDefault is the service's default base seed, matching the
// experiment harness so bench-sourced service runs reproduce the CLI
// artifacts exactly.
const BaseSeedDefault = 2018
