package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// clusterNode is one in-process member of a test cluster, listening on a
// real loopback port (peer probes and forwards go over real HTTP).
type clusterNode struct {
	s   *Server
	url string
}

// startCluster boots n serve.Servers with a shared membership. Listeners
// are bound before any server is built, so every node knows the full peer
// list at construction.
func startCluster(t *testing.T, n int, mod func(*Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := Config{
			Workers:            2,
			BaseSeed:           BaseSeedDefault,
			CacheBytes:         16 << 20,
			Peers:              append([]string(nil), urls...),
			Self:               urls[i],
			PeerHealthInterval: 100 * time.Millisecond,
		}
		if mod != nil {
			mod(&cfg)
		}
		s := New(cfg)
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(func() { ts.Close(); s.Close() })
		nodes[i] = &clusterNode{s: s, url: urls[i]}
	}
	return nodes
}

// postRaw issues a real HTTP POST and returns the response with its body
// fully read.
func postRaw(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// discoverShard asks a node for a request's key and owner without
// computing anything.
func discoverShard(t *testing.T, node *clusterNode, submitBody string) (key, owner, route string) {
	t.Helper()
	resp, data := postRaw(t, node.url+"/internal/shard", submitBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/internal/shard: %d: %s", resp.StatusCode, data)
	}
	var shard struct {
		Key   string `json:"key"`
		Owner string `json:"owner"`
		Route string `json:"route"`
		Self  string `json:"self"`
	}
	if err := json.Unmarshal(data, &shard); err != nil {
		t.Fatal(err)
	}
	return shard.Key, shard.Owner, shard.Route
}

// pickNodes splits a cluster by role relative to owner: the owner node,
// and the non-owners in order.
func pickNodes(t *testing.T, nodes []*clusterNode, owner string) (ownerNode *clusterNode, others []*clusterNode) {
	t.Helper()
	for _, n := range nodes {
		if n.url == owner {
			ownerNode = n
		} else {
			others = append(others, n)
		}
	}
	if ownerNode == nil {
		t.Fatalf("owner %s is not a cluster member", owner)
	}
	return ownerNode, others
}

func TestClusterForwardsToOwnerAndServesPeerHits(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	reqBody := `{"bench":"rotary_pcr"}`
	_, owner, route := discoverShard(t, nodes[0], `{"op":"stats","bench":"rotary_pcr"}`)
	if route != owner {
		t.Fatalf("route %s != owner %s with all peers healthy", route, owner)
	}
	ownerNode, others := pickNodes(t, nodes, owner)
	relay, third := others[0], others[1]

	// A request landing on a non-owner is forwarded: shard + forwarded
	// headers mark the hop, and the owner computes the miss.
	resp1, body1 := postRaw(t, relay.url+"/v1/stats", reqBody, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get(cluster.ShardHeader); got != owner {
		t.Errorf("shard header = %q, want owner %q", got, owner)
	}
	if got := resp1.Header.Get(cluster.ForwardedHeader); got != relay.url {
		t.Errorf("forwarded header = %q, want relaying node %q", got, relay.url)
	}
	if got := resp1.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("first forwarded request cache = %q, want miss", got)
	}

	// Byte-identity across topologies: a fresh single-node server answers
	// with exactly the same bytes the cluster produced.
	solo := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, CacheBytes: 16 << 20})
	defer solo.Close()
	w := do(t, solo.Handler(), http.MethodPost, "/v1/stats", reqBody)
	if w.Body.String() != string(body1) {
		t.Error("cluster-forwarded body differs from single-node body")
	}
	if h := w.Header().Get(cluster.ShardHeader); h != "" {
		t.Errorf("single-node response carries shard header %q", h)
	}
	if h := w.Header().Get(cluster.ForwardedHeader); h != "" {
		t.Errorf("single-node response carries forwarded header %q", h)
	}

	// Re-request through the same non-owner: the owner's cache answers.
	resp2, body2 := postRaw(t, relay.url+"/v1/stats", reqBody, nil)
	if got := resp2.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("repeat forwarded request cache = %q, want hit", got)
	}
	if string(body2) != string(body1) {
		t.Error("repeat body differs from first body")
	}

	// Direct to the owner: a plain local hit, no forwarding involved.
	resp3, body3 := postRaw(t, ownerNode.url+"/v1/stats", reqBody, nil)
	if got := resp3.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("owner-direct cache = %q, want hit", got)
	}
	if got := resp3.Header.Get(cluster.ForwardedHeader); got != "" {
		t.Errorf("owner-direct response claims a hop: %q", got)
	}
	if string(body3) != string(body1) {
		t.Error("owner-direct body differs")
	}

	// Loop guard: a request already marked as forwarded is served where
	// it lands. The third node misses locally, probes the owner's cache,
	// and adopts the entry — reported as a hit, same bytes.
	resp4, body4 := postRaw(t, third.url+"/v1/stats", reqBody,
		map[string]string{cluster.ForwardedHeader: "test-pin"})
	if got := resp4.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("peer-probe cache = %q, want hit (adopted from owner)", got)
	}
	if got := resp4.Header.Get(cluster.ForwardedHeader); got != "" {
		t.Errorf("loop-guarded request was relayed again: %q", got)
	}
	if string(body4) != string(body1) {
		t.Error("peer-probe body differs")
	}
}

func TestClusterJobSubmitRoutesToOwnerAndReadsFanOut(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	submitBody := `{"op":"stats","bench":"rotary_pcr"}`
	key, owner, _ := discoverShard(t, nodes[0], submitBody)
	_, others := pickNodes(t, nodes, owner)
	relay := others[0]

	resp, data := postRaw(t, relay.url+"/v1/jobs", submitBody, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(cluster.ForwardedHeader); got != relay.url {
		t.Errorf("job submit forwarded header = %q, want %q", got, relay.url)
	}
	var doc jobDTO
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	// The forwarded canonical body derives the same content address the
	// relaying node computed — the whole point of re-encoding the
	// envelope instead of replaying client bytes.
	if doc.CacheKey != key {
		t.Errorf("owner derived key %s, relay derived %s", doc.CacheKey, key)
	}

	// Poll through the relaying node: its local store has no such job, so
	// the read fans out to the peers and relays the owner's document.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, data = getRaw(t, relay.url+"/v1/jobs/"+doc.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get via relay: %d: %s", resp.StatusCode, data)
		}
		if got := resp.Header.Get(cluster.ForwardedHeader); got != relay.url {
			t.Fatalf("relayed job document missing forwarded header, got %q", got)
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status == "completed" || doc.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %s", doc.ID, data)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if doc.Status != "completed" {
		t.Fatalf("job status = %s", doc.Status)
	}

	// The result read fans out the same way, and its bytes are exactly
	// the synchronous endpoint's.
	_, resultBody := getRaw(t, relay.url+"/v1/jobs/"+doc.ID+"/result")
	_, syncBody := postRaw(t, relay.url+"/v1/stats", `{"bench":"rotary_pcr"}`, nil)
	if string(resultBody) != string(syncBody) {
		t.Error("job result bytes differ from the synchronous endpoint's")
	}

	// An ID nobody holds is a 404 even after the fan-out.
	resp, _ = getRaw(t, relay.url+"/v1/jobs/job-nope-000042")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job via relay = %d, want 404", resp.StatusCode)
	}
}

func TestClusterPeerCacheProbeEndpoint(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	// An uncached key answers 404.
	resp, _ := getRaw(t, nodes[0].url+cluster.ProbePath+"/"+strings.Repeat("ab", 32))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("probe of uncached key = %d, want 404", resp.StatusCode)
	}
	// Compute on the owner, then probe it directly.
	key, owner, _ := discoverShard(t, nodes[0], `{"op":"validate","bench":"rotary_pcr"}`)
	ownerNode, _ := pickNodes(t, nodes, owner)
	_, direct := postRaw(t, ownerNode.url+"/v1/validate", `{"bench":"rotary_pcr"}`, nil)
	resp, probed := getRaw(t, ownerNode.url+cluster.ProbePath+"/"+key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe of cached key = %d", resp.StatusCode)
	}
	if string(probed) != string(direct) {
		t.Error("probe bytes differ from the endpoint's response")
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("probe content type = %q", ct)
	}
}

func TestSingleNodeHasNoClusterSurface(t *testing.T) {
	s := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, CacheBytes: 16 << 20})
	defer s.Close()
	h := s.Handler()
	w := do(t, h, http.MethodPost, "/v1/stats", `{"bench":"rotary_pcr"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	for _, hdr := range []string{cluster.ShardHeader, cluster.ForwardedHeader} {
		if v := w.Header().Get(hdr); v != "" {
			t.Errorf("single-node response carries %s: %q", hdr, v)
		}
	}
	// The peer-facing routes do not exist single-node.
	w = do(t, h, http.MethodPost, "/internal/shard", `{"op":"stats","bench":"rotary_pcr"}`)
	if w.Code != http.StatusNotFound {
		t.Errorf("/internal/shard single-node = %d, want 404", w.Code)
	}
	w = do(t, h, http.MethodGet, fmt.Sprintf("/internal/cache/%064d", 0), "")
	if w.Code != http.StatusNotFound {
		t.Errorf("/internal/cache single-node = %d, want 404", w.Code)
	}
}

func TestClusterOwnerDeathFailsOverDeterministically(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	reqBody := `{"bench":"rotary_pcr"}`
	_, owner, _ := discoverShard(t, nodes[0], `{"op":"validate","bench":"rotary_pcr"}`)
	ownerNode, others := pickNodes(t, nodes, owner)

	// Cache the result everywhere it will be needed, then kill the owner.
	_, before := postRaw(t, others[0].url+"/v1/validate", reqBody, nil)
	ownerNode.s.Close()
	// Mark the owner down on the survivors (the health loop would notice
	// within its interval; marking directly keeps the test instant).
	for _, n := range others {
		n.s.cluster.MarkDown(owner)
	}

	// The survivors agree on the same stand-in owner for the key, and the
	// request still answers byte-identically (relay already cached it
	// when it forwarded — a cold stand-in would recompute the same bytes).
	key, deadOwner, route := discoverShard(t, others[0], `{"op":"validate","bench":"rotary_pcr"}`)
	if deadOwner != owner {
		t.Fatalf("raw ring owner changed after death: %s -> %s", owner, deadOwner)
	}
	if route == owner {
		t.Fatalf("/internal/shard still routes to the dead owner %s", owner)
	}
	r0 := others[0].s.cluster.Route(key)
	r1 := others[1].s.cluster.Route(key)
	if r0 != r1 {
		t.Fatalf("survivors disagree on stand-in owner: %s vs %s", r0, r1)
	}
	if r0 == owner {
		t.Fatalf("stand-in owner is the dead node")
	}
	resp, after := postRaw(t, others[0].url+"/v1/validate", reqBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-death request: %d: %s", resp.StatusCode, after)
	}
	if string(after) != string(before) {
		t.Error("response bytes changed after owner death")
	}
}
