package serve

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// The flight-recorder debug surface: GET /debug/requests lists the
// retained request records newest-first (?n= bounds the list), and
// GET /debug/requests/{id} serves one record with its full span tree.
// This is the live-box answer to "show me the last slow /v1/pnr" — the
// recorder is always on, unlike the -trace export, and biased toward
// errors, shed requests, and the slow tail by construction.

// flightSummary is one record in the list view: identity and outcome
// without the span tree.
type flightSummary struct {
	ID         string  `json:"request_id"`
	TraceID    string  `json:"trace_id"`
	Endpoint   string  `json:"endpoint"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	StartedAt  string  `json:"started_at"`
	DurationMS float64 `json:"duration_ms"`
	Cache      string  `json:"cache,omitempty"`
	Reason     string  `json:"reason"`
	Spans      int     `json:"spans"`
	URL        string  `json:"url"`
}

// flightListResponse is the GET /debug/requests envelope.
type flightListResponse struct {
	Items []flightSummary `json:"items"`
	Total int             `json:"total"`
	// Recorder counters: how many requests were offered, kept, and
	// evicted since boot, plus the adaptive slow threshold (0 while the
	// latency estimator is still warming up).
	Seen       uint64  `json:"seen"`
	Kept       uint64  `json:"kept"`
	Evicted    uint64  `json:"evicted"`
	P99Seconds float64 `json:"p99_seconds,omitempty"`
}

// flightDetail is the per-id view: the summary plus the span tree and
// the full traceparent for cross-service correlation.
type flightDetail struct {
	flightSummary
	Traceparent string           `json:"traceparent"`
	Truncated   bool             `json:"truncated,omitempty"`
	SpanTree    []obs.FlightSpan `json:"span_tree"`
}

func flightSummaryOf(rec *obs.RequestRecord) flightSummary {
	return flightSummary{
		ID:         rec.ID,
		TraceID:    rec.TraceID,
		Endpoint:   rec.Endpoint,
		Method:     rec.Method,
		Path:       rec.Path,
		Status:     rec.Status,
		StartedAt:  rec.Start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(rec.Duration.Microseconds()) / 1000,
		Cache:      rec.Cache,
		Reason:     rec.Reason,
		Spans:      len(rec.Spans),
		URL:        "/debug/requests/" + rec.ID,
	}
}

// errFlightDisabled answers the debug endpoints when the recorder was
// disabled with -flight-requests 0.
var errFlightDisabled = fmt.Errorf("%w: flight recorder disabled", errBadRequest)

// handleFlightList serves the retained records newest-first; ?n= bounds
// the list.
func (s *Server) handleFlightList(w http.ResponseWriter, r *http.Request) error {
	if s.flight == nil {
		return errFlightDisabled
	}
	n, err := debugLimit(r)
	if err != nil {
		return err
	}
	recs := s.flight.Snapshot(n)
	items := make([]flightSummary, 0, len(recs))
	for _, rec := range recs {
		items = append(items, flightSummaryOf(rec))
	}
	st := s.flight.Stats()
	return writeJSON(w, r, http.StatusOK, flightListResponse{
		Items:      items,
		Total:      len(items),
		Seen:       st.Seen,
		Kept:       st.Kept,
		Evicted:    st.Evicted,
		P99Seconds: st.P99,
	})
}

// handleFlightGet serves one record with its span tree.
func (s *Server) handleFlightGet(w http.ResponseWriter, r *http.Request) error {
	if s.flight == nil {
		return errFlightDisabled
	}
	id := r.PathValue("id")
	rec, ok := s.flight.Get(id)
	if !ok {
		return fmt.Errorf("%w: no flight record for %q (evicted or never kept)", errNotFound, id)
	}
	doc := flightDetail{
		flightSummary: flightSummaryOf(rec),
		Traceparent:   rec.Traceparent,
		Truncated:     rec.Truncated,
		SpanTree:      rec.Spans,
	}
	if doc.SpanTree == nil {
		doc.SpanTree = []obs.FlightSpan{}
	}
	return writeJSON(w, r, http.StatusOK, doc)
}
