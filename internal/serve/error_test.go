package serve

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// TestRetryAfterHeaderMatchesBody pins the contract between the two
// renderings of an overload hint: the Retry-After header is always
// ceil(retry_after_ms / 1000), never a truncation, and never below 1
// second. A sub-second hint used to render header 0 with ms 900 —
// telling spec-compliant clients to hammer immediately.
func TestRetryAfterHeaderMatchesBody(t *testing.T) {
	cases := []struct {
		retryAfter time.Duration
		wantMS     int64
		wantHeader string
	}{
		{0, 1000, "1"},                       // unset floors to one second
		{-5 * time.Second, 1000, "1"},        // nonsense floors too
		{999 * time.Microsecond, 1000, "1"},  // sub-millisecond rounds to the floor
		{900 * time.Millisecond, 900, "1"},   // sub-second: header rounds UP, ms stays exact
		{time.Second, 1000, "1"},             // exact second
		{1500 * time.Millisecond, 1500, "2"}, // ceil, not truncate
		{2 * time.Second, 2000, "2"},
		{61 * time.Second, 61000, "61"},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/v1/pnr", nil)
		writeError(context.Background(), w, r, &OverloadedError{RetryAfter: tc.retryAfter})
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("RetryAfter=%v: status %d, want 429", tc.retryAfter, w.Code)
		}
		var body errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("RetryAfter=%v: %v", tc.retryAfter, err)
		}
		if body.RetryAfterMS != tc.wantMS {
			t.Errorf("RetryAfter=%v: retry_after_ms = %d, want %d", tc.retryAfter, body.RetryAfterMS, tc.wantMS)
		}
		hdr := w.Header().Get("Retry-After")
		if hdr != tc.wantHeader {
			t.Errorf("RetryAfter=%v: Retry-After header = %q, want %q", tc.retryAfter, hdr, tc.wantHeader)
		}
		// The structural invariant behind the table: header == ceil(ms/1000).
		if want := strconv.FormatInt((body.RetryAfterMS+999)/1000, 10); hdr != want {
			t.Errorf("RetryAfter=%v: header %q != ceil(%dms / 1000) = %q", tc.retryAfter, hdr, body.RetryAfterMS, want)
		}
		if secs, err := strconv.Atoi(hdr); err != nil || secs < 1 {
			t.Errorf("RetryAfter=%v: header %q below the one-second floor", tc.retryAfter, hdr)
		}
	}
}

// TestGzipPanicRecyclesPooledWriter is the regression test for the
// pooled-writer leak: a handler panicking mid-body used to skip the
// deferred Close+Put, so the flate state never returned to the pool —
// and with a recover() upstream, a later request could receive a writer
// still holding the panicked request's partial compression state.
// The middleware must recycle the writer on the panic path (reset, not
// closed — closing would flush garbage) and re-panic.
func TestGzipPanicRecyclesPooledWriter(t *testing.T) {
	s := New(Config{Workers: 1, BaseSeed: BaseSeedDefault})
	defer s.Close()
	boom := s.wrap("boom", func(w http.ResponseWriter, r *http.Request) error {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"partial":`)) // dirty the compressor, then die
		panic("handler exploded mid-body")
	})
	ok := s.wrap("ok", func(w http.ResponseWriter, r *http.Request) error {
		w.Header().Set("Content-Type", "text/plain")
		_, err := io.WriteString(w, "hello world\n")
		return err
	})

	// Cycle panics and healthy requests through the pool several times:
	// with a single pooled writer being reused, any leaked state corrupts
	// the very next compressed response.
	for i := 0; i < 8; i++ {
		req := httptest.NewRequest(http.MethodGet, "/boom", nil)
		req.Header.Set("Accept-Encoding", "gzip")
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panic did not propagate out of the middleware")
				}
			}()
			boom.ServeHTTP(httptest.NewRecorder(), req)
		}()

		req2 := httptest.NewRequest(http.MethodGet, "/ok", nil)
		req2.Header.Set("Accept-Encoding", "gzip")
		w2 := httptest.NewRecorder()
		ok.ServeHTTP(w2, req2)
		if w2.Code != http.StatusOK {
			t.Fatalf("round %d: healthy request after panic: %d", i, w2.Code)
		}
		if enc := w2.Header().Get("Content-Encoding"); enc != "gzip" {
			t.Fatalf("round %d: Content-Encoding = %q, want gzip", i, enc)
		}
		gz, err := gzip.NewReader(w2.Body)
		if err != nil {
			t.Fatalf("round %d: invalid gzip stream after panic: %v", i, err)
		}
		data, err := io.ReadAll(gz)
		if err != nil {
			t.Fatalf("round %d: reading gzip stream: %v", i, err)
		}
		if string(data) != "hello world\n" {
			t.Fatalf("round %d: body = %q, want %q (pooled writer leaked state)", i, data, "hello world\n")
		}
	}
}
