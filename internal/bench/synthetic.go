package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/xrand"
)

// CircuitParams sizes a Boolean-circuit synthetic benchmark. The generator
// follows the Fluigi synthetic flow: primary inputs become chip IO ports,
// two-input gates become mixers, inverters become valves, wires become
// channels (with fanout as multi-sink connections), and every signal left
// unconsumed is brought out to an output port.
type CircuitParams struct {
	// Inputs is the number of primary inputs.
	Inputs int
	// Gates is the number of logic gates.
	Gates int
	// Levels bounds circuit depth; gates are distributed evenly. Values
	// below 2 default to 4.
	Levels int
	// InverterRatio is the percentage (0-100) of gates that are one-input
	// inverters rather than two-input gates.
	InverterRatio int
	// Seed drives the deterministic PRNG.
	Seed uint64
}

// planarSizes are the fixed parameters of the five suite synthetics.
var planarSizes = [5]CircuitParams{
	{Inputs: 8, Gates: 12, Levels: 3, InverterRatio: 25, Seed: 0xB01},
	{Inputs: 12, Gates: 25, Levels: 4, InverterRatio: 25, Seed: 0xB02},
	{Inputs: 16, Gates: 50, Levels: 5, InverterRatio: 25, Seed: 0xB03},
	{Inputs: 24, Gates: 100, Levels: 6, InverterRatio: 25, Seed: 0xB04},
	{Inputs: 32, Gates: 200, Levels: 7, InverterRatio: 25, Seed: 0xB05},
}

// PlanarSynthetic builds suite synthetic benchmark n (1-based, 1..5).
// Out-of-range values panic: the suite is a fixed artifact.
func PlanarSynthetic(n int) *core.Device {
	if n < 1 || n > len(planarSizes) {
		panic(fmt.Sprintf("bench: planar synthetic %d out of range 1..%d", n, len(planarSizes)))
	}
	return SyntheticCircuit(fmt.Sprintf("planar_synthetic_%d", n), planarSizes[n-1])
}

// signal is one value source in the generated circuit: a primary input's
// port or a gate's output port, as a "component.port" endpoint.
type signal struct {
	endpoint string // source endpoint spec
	level    int    // 0 for primary inputs
}

// SyntheticCircuit generates a Boolean-circuit benchmark device from the
// given parameters. The circuit is layered and *planar by construction* —
// each gate consumes signals only from the previous level, and parent
// assignments are monotone across a level so no two wires cross — matching
// the "planar synthetic" class of the suite, whose devices must be
// routable on a single flow layer. Generation is deterministic in the
// parameters.
func SyntheticCircuit(name string, p CircuitParams) *core.Device {
	if p.Inputs < 1 {
		p.Inputs = 1
	}
	if p.Gates < 1 {
		p.Gates = 1
	}
	if p.Levels < 2 {
		p.Levels = 4
	}
	r := xrand.New(p.Seed*0x9E37 + 1)
	b := core.NewBuilder(name)
	flow := b.FlowLayer()

	// consumers maps a signal's source endpoint to the input ports it
	// drives; one multi-sink connection is emitted per driven signal.
	consumers := make(map[string][]string)
	var allSignals []string

	prev := make([]string, 0, p.Inputs)
	for i := 1; i <= p.Inputs; i++ {
		id := b.IOPort(fmt.Sprintf("pi%d", i), flow, portSize)
		prev = append(prev, id+".port1")
		allSignals = append(allSignals, id+".port1")
	}

	perLevel := (p.Gates + p.Levels - 1) / p.Levels
	gateNum := 0
	for level := 1; level <= p.Levels && gateNum < p.Gates; level++ {
		count := perLevel
		if rem := p.Gates - gateNum; count > rem {
			count = rem
		}
		cur := make([]string, 0, count)
		lastParent := 0
		for j := 0; j < count; j++ {
			gateNum++
			// Monotone parent assignment with ±1 jitter keeps wires from
			// crossing: each gate's leftmost parent never precedes the
			// previous gate's leftmost parent.
			base := 0
			if count > 1 {
				base = j * (len(prev) - 1) / (count - 1)
			}
			a := base + r.Intn(3) - 1
			if a < lastParent {
				a = lastParent
			}
			if a > len(prev)-1 {
				a = len(prev) - 1
			}
			lastParent = a
			inverter := r.Intn(100) < p.InverterRatio
			var out string
			if inverter {
				id := fmt.Sprintf("inv%d", gateNum)
				b.Component(id, core.EntityValve, []string{flow}, valveSize, valveSize,
					mint.ConventionPorts(core.EntityValve, flow, valveSize, valveSize, 1, 1)...)
				consumers[prev[a]] = append(consumers[prev[a]], id+".port1")
				out = id + ".port2"
			} else {
				id := fmt.Sprintf("g%d", gateNum)
				b.Component(id, core.EntityMixer, []string{flow}, mixerXSpan, mixerYSpan,
					mint.ConventionPorts(core.EntityMixer, flow, mixerXSpan, mixerYSpan, 2, 1)...)
				c := a + 1
				if c > len(prev)-1 {
					c = len(prev) - 1
				}
				consumers[prev[a]] = append(consumers[prev[a]], id+".port1")
				if c != a {
					consumers[prev[c]] = append(consumers[prev[c]], id+".port2")
				} else {
					consumers[prev[a]] = append(consumers[prev[a]], id+".port2")
				}
				lastParent = c
				out = id + ".port3"
			}
			cur = append(cur, out)
		}
		allSignals = append(allSignals, cur...)
		prev = cur
	}

	// Primary inputs skipped by the jittered parent assignment would form
	// two-component islands with their output ports; bridge each island
	// into the main circuit with an extra two-input gate. Bridges join an
	// island signal to an adjacent-in-order signal, so the near-planar
	// structure survives.
	uf := newUnionFind()
	for src, sinks := range consumers {
		sc := core.ParseTarget(src).Component
		for _, sk := range sinks {
			uf.union(sc, core.ParseTarget(sk).Component)
		}
	}
	for {
		classOf := make(map[string]string) // root -> representative signal
		for _, sig := range allSignals {
			root := uf.find(core.ParseTarget(sig).Component)
			if _, ok := classOf[root]; !ok {
				classOf[root] = sig
			}
		}
		if len(classOf) <= 1 {
			break
		}
		roots := sortedKeys(classOf)
		sa, sb := classOf[roots[0]], classOf[roots[1]]
		gateNum++
		id := fmt.Sprintf("bridge%d", gateNum)
		b.Component(id, core.EntityMixer, []string{flow}, mixerXSpan, mixerYSpan,
			mint.ConventionPorts(core.EntityMixer, flow, mixerXSpan, mixerYSpan, 2, 1)...)
		consumers[sa] = append(consumers[sa], id+".port1")
		consumers[sb] = append(consumers[sb], id+".port2")
		uf.union(core.ParseTarget(sa).Component, id)
		uf.union(core.ParseTarget(sb).Component, id)
		allSignals = append(allSignals, id+".port3")
	}

	// Every unconsumed signal — the final level plus any level's leftovers
	// — exits through an output port. Degree-1 leaves never break
	// planarity.
	nOut := 0
	for _, sig := range allSignals {
		if len(consumers[sig]) == 0 {
			nOut++
			id := b.IOPort(fmt.Sprintf("po%d", nOut), flow, portSize)
			consumers[sig] = []string{id + ".port1"}
		}
	}

	// Emit one connection per driven signal, multi-sink for fanout, in
	// deterministic order.
	n := 0
	for _, src := range sortedKeys(consumers) {
		n++
		b.Connect(fmt.Sprintf("w%d", n), flow, src, consumers[src]...)
	}
	return b.MustBuild()
}

// unionFind is a plain disjoint-set over component IDs, used to keep
// generated circuits connected.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		// Attach the lexically larger root under the smaller so roots are
		// deterministic regardless of union order.
		if ra < rb {
			u.parent[rb] = ra
		} else {
			u.parent[ra] = rb
		}
	}
}

// SweepPoint is one entry of the runtime-scaling sweep (Fig. 5).
type SweepPoint struct {
	// Name identifies the point, e.g. "sweep_040".
	Name string
	// Components is the approximate component count requested.
	Components int
	// Device is the generated benchmark.
	Device *core.Device
}

// Sweep generates synthetic benchmarks of geometrically increasing size
// for the runtime-scaling experiment: component counts double from, e.g.,
// 10 up to 10*2^(points-1).
func Sweep(base, points int, seed uint64) []SweepPoint {
	out := make([]SweepPoint, 0, points)
	size := base
	for i := 0; i < points; i++ {
		// Roughly: 1/4 of components are IO ports, 3/4 gates.
		gates := size * 3 / 4
		inputs := size / 8
		if inputs < 2 {
			inputs = 2
		}
		name := fmt.Sprintf("sweep_%04d", size)
		dev := SyntheticCircuit(name, CircuitParams{
			Inputs: inputs, Gates: gates,
			Levels:        3 + i,
			InverterRatio: 25,
			Seed:          seed + uint64(i)*7919,
		})
		out = append(out, SweepPoint{Name: name, Components: size, Device: dev})
		size *= 2
	}
	return out
}
