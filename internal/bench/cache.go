// Device cache: the suite generators are deterministic, so the device a
// benchmark builds never changes within a process. The experiment harness
// regenerates every table and figure from the same twelve devices; building
// each one exactly once and sharing the result across experiments (and
// across the runner's worker goroutines) removes redundant generator work
// without changing a single output byte.
//
// Cached devices are shared and must be treated as read-only. Every
// consumer in this repository honors that contract: the placers keep
// origins in a separate Placement, the mutator clones before injecting
// faults, and pnr clones before attaching features. Callers that need a
// private mutable copy should Clone() the cached device or call Build()
// directly.
package bench

import (
	"sync"

	"repro/internal/core"
)

// buildCache memoizes generator output per benchmark name. Entries are
// created under the map lock but built inside a per-entry sync.Once, so
// two benchmarks can build concurrently while each generator still runs at
// most once per process.
var buildCache = struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}{entries: make(map[string]*cacheEntry)}

type cacheEntry struct {
	once   sync.Once
	device *core.Device
	builds int
}

// Device returns the benchmark's device from the process-wide cache,
// building it on first use. The returned device is shared: treat it as
// read-only, or Clone() it.
func (b Benchmark) Device() *core.Device {
	buildCache.mu.Lock()
	e, ok := buildCache.entries[b.Name]
	if !ok {
		e = &cacheEntry{}
		buildCache.entries[b.Name] = e
	}
	buildCache.mu.Unlock()
	e.once.Do(func() {
		e.device = b.Build()
		e.builds++
	})
	return e.device
}

// BuildCount reports how many times the named benchmark's generator has
// run through the cache since the last ResetBuildCache. It is at most 1
// unless the cache was reset mid-flight.
func BuildCount(name string) int {
	buildCache.mu.Lock()
	defer buildCache.mu.Unlock()
	if e, ok := buildCache.entries[name]; ok {
		return e.builds
	}
	return 0
}

// TotalBuildCount sums BuildCount over all cached benchmarks.
func TotalBuildCount() int {
	buildCache.mu.Lock()
	defer buildCache.mu.Unlock()
	total := 0
	for _, e := range buildCache.entries {
		total += e.builds
	}
	return total
}

// ResetBuildCache drops every cached device and zeroes the build counters.
// Tests use it to assert the exactly-once build property of a fresh run.
func ResetBuildCache() {
	buildCache.mu.Lock()
	defer buildCache.mu.Unlock()
	buildCache.entries = make(map[string]*cacheEntry)
}
