package bench

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestDeviceCacheBuildsOnce(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()
	b, err := ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	d1 := b.Device()
	d2 := b.Device()
	if d1 != d2 {
		t.Error("cache returned distinct devices for the same benchmark")
	}
	if n := BuildCount("rotary_pcr"); n != 1 {
		t.Errorf("BuildCount = %d, want 1", n)
	}
	if !core.Equal(d1, b.Build()) {
		t.Error("cached device differs from a fresh build")
	}
}

func TestDeviceCacheConcurrentExactlyOnce(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()
	suite := Suite()
	var wg sync.WaitGroup
	devices := make([][]*core.Device, 8)
	for g := 0; g < 8; g++ {
		g := g
		devices[g] = make([]*core.Device, len(suite))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, b := range suite {
				devices[g][i] = b.Device()
			}
		}()
	}
	wg.Wait()
	for i, b := range suite {
		if n := BuildCount(b.Name); n != 1 {
			t.Errorf("%s: BuildCount = %d, want 1", b.Name, n)
		}
		for g := 1; g < 8; g++ {
			if devices[g][i] != devices[0][i] {
				t.Errorf("%s: goroutine %d saw a different device pointer", b.Name, g)
			}
		}
	}
	if total := TotalBuildCount(); total != len(suite) {
		t.Errorf("TotalBuildCount = %d, want %d", total, len(suite))
	}
}
