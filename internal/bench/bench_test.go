package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/validate"
)

func TestSuiteShape(t *testing.T) {
	s := Suite()
	if len(s) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(s))
	}
	assay, synth := 0, 0
	seen := map[string]bool{}
	for _, b := range s {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Description == "" || b.Build == nil {
			t.Errorf("benchmark %q incomplete", b.Name)
		}
		switch b.Class {
		case Assay:
			assay++
		case Synthetic:
			synth++
		default:
			t.Errorf("benchmark %q has class %q", b.Name, b.Class)
		}
	}
	if assay != 7 || synth != 5 {
		t.Errorf("class split = %d assay / %d synthetic, want 7/5", assay, synth)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("rotary_pcr")
	if err != nil || b.Name != "rotary_pcr" {
		t.Errorf("ByName = %+v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	} else if !strings.Contains(err.Error(), "aquaflex_3b") {
		t.Errorf("error should list available names: %v", err)
	}
	if len(Names()) != 12 {
		t.Errorf("Names = %v", Names())
	}
}

// TestEveryBenchmarkValidates is the suite's keystone invariant: all twelve
// devices must pass semantic validation with zero errors and zero warnings.
func TestEveryBenchmarkValidates(t *testing.T) {
	for _, b := range Suite() {
		t.Run(b.Name, func(t *testing.T) {
			d := b.Build()
			if d.Name != b.Name {
				t.Errorf("device name %q != benchmark name %q", d.Name, b.Name)
			}
			r := validate.Validate(d)
			if r.Errors() > 0 || r.Warnings() > 0 {
				t.Errorf("benchmark not clean:\n%s", r)
			}
		})
	}
}

func TestEveryBenchmarkIsDeterministic(t *testing.T) {
	for _, b := range Suite() {
		t.Run(b.Name, func(t *testing.T) {
			d1, d2 := b.Build(), b.Build()
			if !core.Equal(d1, d2) {
				t.Error("two builds of the same benchmark differ")
			}
		})
	}
}

func TestEveryBenchmarkRoundTripsJSON(t *testing.T) {
	for _, b := range Suite() {
		t.Run(b.Name, func(t *testing.T) {
			d := b.Build()
			data, err := core.Marshal(d)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			back, err := core.Unmarshal(data)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !core.Equal(d, back) {
				t.Error("JSON round trip changed the device")
			}
		})
	}
}

func TestEveryBenchmarkIsConnected(t *testing.T) {
	for _, b := range Suite() {
		t.Run(b.Name, func(t *testing.T) {
			d := b.Build()
			g := netlist.Build(d)
			// Control nets make the whole device one connected class for
			// assay benchmarks; synthetics are flow-only but still single
			// components by construction.
			if !g.IsConnected() {
				t.Errorf("benchmark graph is disconnected: %d classes",
					len(g.ConnectedComponents()))
			}
		})
	}
}

func TestSuiteSizeOrdering(t *testing.T) {
	// The synthetics must grow strictly in component count.
	prev := 0
	for n := 1; n <= 5; n++ {
		d := PlanarSynthetic(n)
		c := d.Stats().Components
		if c <= prev {
			t.Errorf("planar_synthetic_%d has %d components, not larger than %d", n, c, prev)
		}
		prev = c
	}
}

func TestAssayBenchmarkStructure(t *testing.T) {
	cases := []struct {
		name          string
		wantValves    int
		wantTwoLayers bool
		minComponents int
	}{
		{"aquaflex_3b", 6, true, 15},
		{"aquaflex_5a", 10, true, 25},
		{"chromatin_immunoprecipitation", 9, true, 30},
		{"general_purpose_mfd", 16, true, 35},
		{"hiv_diagnostics", 5, true, 20},
		{"rotary_pcr", 4, true, 12},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b, err := ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			d := b.Build()
			if got := d.CountEntity(core.EntityValve); got != c.wantValves {
				t.Errorf("valves = %d, want %d", got, c.wantValves)
			}
			if c.wantTwoLayers && len(d.Layers) != 2 {
				t.Errorf("layers = %d, want 2", len(d.Layers))
			}
			if got := d.Stats().Components; got < c.minComponents {
				t.Errorf("components = %d, want >= %d", got, c.minComponents)
			}
		})
	}
}

func TestMolecularGradientsLattice(t *testing.T) {
	d := MolecularGradients()
	// Levels 2..6: 2+3+4+5+6 = 20 gradient mixers.
	if got := d.CountEntity(core.EntityGradient); got != 20 {
		t.Errorf("gradient mixers = %d, want 20", got)
	}
	// 2 inlets + 6 outlets.
	if got := d.CountEntity(core.EntityPort); got != 8 {
		t.Errorf("ports = %d, want 8", got)
	}
	// Flow-only device (the lattice has no valves).
	if got := d.CountEntity(core.EntityValve); got != 0 {
		t.Errorf("valves = %d, want 0", got)
	}
}

func TestGeneralPurposeMFDStructure(t *testing.T) {
	d := GeneralPurposeMFD()
	if got := d.CountEntity(core.EntityMux); got != 2 {
		t.Errorf("muxes = %d, want 2", got)
	}
	if got := d.CountEntity(core.EntityChamber); got != 8 {
		t.Errorf("chambers = %d, want 8", got)
	}
	g := netlist.Build(d)
	// The demux drives 8 reactors plus its input: degree 9.
	if got := g.Degree("demux"); got != 9 {
		t.Errorf("demux degree = %d, want 9", got)
	}
}

func TestChIPControlInfrastructure(t *testing.T) {
	d := ChromatinImmunoprecipitation()
	if got := d.CountEntity(core.EntityPump); got != 2 {
		t.Errorf("pumps = %d, want 2", got)
	}
	if got := d.CountEntity(core.EntityCellTrap); got != 4 {
		t.Errorf("traps = %d, want 4", got)
	}
	// Every valve and pump phase has a control line: 9 valves + 2*3 pump
	// phases = 15 control connections.
	ctl := 0
	for _, cn := range d.Connections {
		if cn.Layer == "control" {
			ctl++
		}
	}
	if ctl != 15 {
		t.Errorf("control connections = %d, want 15", ctl)
	}
}

func TestSyntheticCircuitParameters(t *testing.T) {
	p := CircuitParams{Inputs: 10, Gates: 30, Levels: 4, InverterRatio: 30, Seed: 42}
	d := SyntheticCircuit("syn", p)
	r := validate.Validate(d)
	if r.Errors() > 0 || r.Warnings() > 0 {
		t.Fatalf("synthetic not clean:\n%s", r)
	}
	// 10 inputs + 30 gates + some outputs.
	stats := d.Stats()
	if stats.Components < 41 {
		t.Errorf("components = %d, want > 40", stats.Components)
	}
	gates := d.CountEntity(core.EntityMixer) + d.CountEntity(core.EntityValve)
	if gates != 30 {
		t.Errorf("gates = %d, want 30", gates)
	}
	if d.CountEntity(core.EntityValve) == 0 {
		t.Error("30%% inverter ratio produced no inverters")
	}
}

func TestSyntheticCircuitDegenerateParams(t *testing.T) {
	d := SyntheticCircuit("tiny", CircuitParams{Inputs: 0, Gates: 0, Levels: 0, Seed: 1})
	r := validate.Validate(d)
	if r.Errors() > 0 {
		t.Fatalf("degenerate synthetic invalid:\n%s", r)
	}
	if d.Stats().Components < 2 {
		t.Errorf("degenerate synthetic too small: %+v", d.Stats())
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	p := CircuitParams{Inputs: 10, Gates: 30, Levels: 4, InverterRatio: 25}
	p.Seed = 1
	d1 := SyntheticCircuit("s", p)
	p.Seed = 2
	d2 := SyntheticCircuit("s", p)
	if core.Equal(d1, d2) {
		t.Error("different seeds produced identical circuits")
	}
}

func TestPlanarSyntheticPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PlanarSynthetic(0) should panic")
		}
	}()
	PlanarSynthetic(0)
}

func TestSweep(t *testing.T) {
	pts := Sweep(10, 4, 99)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	wantSizes := []int{10, 20, 40, 80}
	for i, pt := range pts {
		if pt.Components != wantSizes[i] {
			t.Errorf("point %d components = %d, want %d", i, pt.Components, wantSizes[i])
		}
		r := validate.Validate(pt.Device)
		if r.Errors() > 0 {
			t.Errorf("sweep point %s invalid:\n%s", pt.Name, r)
		}
		if !strings.HasPrefix(pt.Name, "sweep_") {
			t.Errorf("point name = %q", pt.Name)
		}
	}
	// Device sizes must grow monotonically.
	for i := 1; i < len(pts); i++ {
		if pts[i].Device.Stats().Components <= pts[i-1].Device.Stats().Components {
			t.Errorf("sweep sizes not increasing at %d", i)
		}
	}
}
