// Package bench provides the ParchMint benchmark suite: deterministic
// generators that rebuild the twelve devices the paper characterizes —
// seven assay-derived benchmarks reconstructed from published
// laboratory-on-a-chip architectures, and five planar synthetic benchmarks
// derived from Boolean logic circuits the way the Fluigi CAD flow's
// synthetic generator produces them.
//
// The original suite ships hand-extracted JSON netlists; this package
// substitutes generators of the same device class, entity mix, and size
// (see DESIGN.md). Every generated device validates cleanly, making the
// suite a fixed, reproducible input for the characterization and
// place-and-route experiments.
package bench

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// ErrNotFound is the sentinel ByName errors match via errors.Is when the
// requested benchmark is not in the suite. API layers map it to
// "no such resource" (HTTP 404) instead of a generic failure.
var ErrNotFound = errors.New("unknown benchmark")

// Class partitions the suite.
type Class string

// Benchmark classes.
const (
	// Assay benchmarks reconstruct devices from published LoC papers.
	Assay Class = "assay"
	// Synthetic benchmarks are generated from Boolean circuits.
	Synthetic Class = "synthetic"
)

// Benchmark describes one suite entry.
type Benchmark struct {
	// Name is the suite-unique benchmark name.
	Name string
	// Class says whether the benchmark is assay-derived or synthetic.
	Class Class
	// Description summarizes the device and its provenance.
	Description string
	// Build generates the device. Generators are deterministic: repeated
	// calls return equal devices.
	Build func() *core.Device
}

// Suite returns the full 12-benchmark suite in canonical (paper) order:
// assay benchmarks alphabetically, then the synthetics by size.
func Suite() []Benchmark {
	return []Benchmark{
		{
			Name:        "aquaflex_3b",
			Class:       Assay,
			Description: "three-reagent AquaFlex protein assay chip: valved inlets, mix-react chain, waste split",
			Build:       AquaFlex3B,
		},
		{
			Name:        "aquaflex_5a",
			Class:       Assay,
			Description: "five-reagent AquaFlex variant with two mix-react stages and dual collection",
			Build:       AquaFlex5A,
		},
		{
			Name:        "chromatin_immunoprecipitation",
			Class:       Assay,
			Description: "ChIP automation chip: pumped bus feeding four double-valved cell-trap chambers",
			Build:       ChromatinImmunoprecipitation,
		},
		{
			Name:        "general_purpose_mfd",
			Class:       Assay,
			Description: "general-purpose microfluidic device: 1-to-8 demux into valved reactors, 8-to-1 collect",
			Build:       GeneralPurposeMFD,
		},
		{
			Name:        "hiv_diagnostics",
			Class:       Assay,
			Description: "HIV point-of-care diagnostic: serial mixer/valve train into detection chamber",
			Build:       HIVDiagnostics,
		},
		{
			Name:        "molecular_gradients",
			Class:       Assay,
			Description: "molecular gradient generator: two inlets through a 5-level mixing lattice to six outlets",
			Build:       MolecularGradients,
		},
		{
			Name:        "rotary_pcr",
			Class:       Assay,
			Description: "rotary PCR chip: valved sample/reagent load into a rotary pump amplification loop",
			Build:       RotaryPCR,
		},
		{Name: "planar_synthetic_1", Class: Synthetic,
			Description: "Boolean-circuit synthetic, 8 inputs / 12 gates",
			Build:       func() *core.Device { return PlanarSynthetic(1) }},
		{Name: "planar_synthetic_2", Class: Synthetic,
			Description: "Boolean-circuit synthetic, 12 inputs / 25 gates",
			Build:       func() *core.Device { return PlanarSynthetic(2) }},
		{Name: "planar_synthetic_3", Class: Synthetic,
			Description: "Boolean-circuit synthetic, 16 inputs / 50 gates",
			Build:       func() *core.Device { return PlanarSynthetic(3) }},
		{Name: "planar_synthetic_4", Class: Synthetic,
			Description: "Boolean-circuit synthetic, 24 inputs / 100 gates",
			Build:       func() *core.Device { return PlanarSynthetic(4) }},
		{Name: "planar_synthetic_5", Class: Synthetic,
			Description: "Boolean-circuit synthetic, 32 inputs / 200 gates",
			Build:       func() *core.Device { return PlanarSynthetic(5) }},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: %w %q (have %v)", ErrNotFound, name, Names())
}

// Names lists the suite's benchmark names in suite order.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, b := range s {
		out[i] = b.Name
	}
	return out
}

// sortedKeys returns map keys in sorted order for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
