package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mint"
)

// Component footprints shared by the assay generators, in micrometers,
// matching the conventional sizes of the Fluigi component library.
const (
	portSize    = 200
	valveSize   = 300
	nodeSize    = 100
	mixerXSpan  = 2000
	mixerYSpan  = 1000
	chamberSpan = 1200
)

// assay is the common scaffolding for the assay generators: a builder plus
// flow/control layers and counters for control plumbing.
type assay struct {
	b    *core.Builder
	flow string
	ctrl string
	nCtl int
}

func newAssay(name string) *assay {
	b := core.NewBuilder(name)
	return &assay{b: b, flow: b.FlowLayer(), ctrl: b.ControlLayer()}
}

// port adds a flow-layer chip IO port.
func (a *assay) port(id string) string { return a.b.IOPort(id, a.flow, portSize) }

// mixer adds a serpentine mixer with one inlet and one outlet.
func (a *assay) mixer(id string) string {
	return a.b.TwoPort(id, core.EntityMixer, a.flow, mixerXSpan, mixerYSpan)
}

// chamber adds a reaction chamber with one inlet and one outlet.
func (a *assay) chamber(id string) string {
	return a.b.TwoPort(id, core.EntityChamber, a.flow, chamberSpan, chamberSpan)
}

// trap adds a cell-trap chamber with one inlet and one outlet.
func (a *assay) trap(id string) string {
	return a.b.TwoPort(id, core.EntityCellTrap, a.flow, chamberSpan, chamberSpan/2)
}

// node adds a zero-function channel junction with the given port counts.
func (a *assay) node(id string, in, out int) string {
	ports := mint.ConventionPorts(core.EntityNode, a.flow, nodeSize, nodeSize, in, out)
	return a.b.Component(id, core.EntityNode, []string{a.flow}, nodeSize, nodeSize, ports...)
}

// valve adds a monolithic membrane valve spanning flow and control, wired
// to its own fresh control port; the control connection is created here so
// every valve is actuatable.
func (a *assay) valve(id string) string {
	a.b.Component(id, core.EntityValve, []string{a.flow, a.ctrl}, valveSize, valveSize,
		core.Port{Label: "port1", Layer: a.flow, X: 0, Y: valveSize / 2},
		core.Port{Label: "port2", Layer: a.flow, X: valveSize, Y: valveSize / 2},
		core.Port{Label: "ctl", Layer: a.ctrl, X: valveSize / 2, Y: 0},
	)
	a.nCtl++
	cp := a.b.IOPort(fmt.Sprintf("cio%d", a.nCtl), a.ctrl, portSize)
	a.b.Connect(fmt.Sprintf("cnet%d", a.nCtl), a.ctrl, cp+".port1", id+".ctl")
	return id
}

// pump adds a three-phase peristaltic pump spanning flow and control, with
// its three actuation lines wired to fresh control ports.
func (a *assay) pump(id string) string {
	const w, h = 3 * valveSize, valveSize
	a.b.Component(id, core.EntityPump, []string{a.flow, a.ctrl}, w, h,
		core.Port{Label: "port1", Layer: a.flow, X: 0, Y: h / 2},
		core.Port{Label: "port2", Layer: a.flow, X: w, Y: h / 2},
		core.Port{Label: "ctl1", Layer: a.ctrl, X: w / 6, Y: 0},
		core.Port{Label: "ctl2", Layer: a.ctrl, X: w / 2, Y: 0},
		core.Port{Label: "ctl3", Layer: a.ctrl, X: 5 * w / 6, Y: 0},
	)
	for i := 1; i <= 3; i++ {
		a.nCtl++
		cp := a.b.IOPort(fmt.Sprintf("cio%d", a.nCtl), a.ctrl, portSize)
		a.b.Connect(fmt.Sprintf("cnet%d", a.nCtl), a.ctrl,
			cp+".port1", fmt.Sprintf("%s.ctl%d", id, i))
	}
	return id
}

// flowChain connects the given "component.port" endpoints in sequence with
// channels named <prefix>0, <prefix>1, ...
func (a *assay) flowChain(prefix string, endpoints ...string) {
	for i := 0; i+1 < len(endpoints); i++ {
		a.b.Connect(fmt.Sprintf("%s%d", prefix, i), a.flow, endpoints[i], endpoints[i+1])
	}
}

// connect adds one flow channel.
func (a *assay) connect(id, from string, to ...string) {
	a.b.Connect(id, a.flow, from, to...)
}

// AquaFlex3B builds the three-reagent AquaFlex assay chip: three valved
// reagent inlets merging into a mix-react chain, then a valved split to
// product and waste outlets.
func AquaFlex3B() *core.Device {
	a := newAssay("aquaflex_3b")
	merge := a.node("n_merge", 3, 1)
	for i := 1; i <= 3; i++ {
		in := a.port(fmt.Sprintf("in%d", i))
		v := a.valve(fmt.Sprintf("v_in%d", i))
		a.connect(fmt.Sprintf("f_in%d", i), in+".port1", v+".port1")
		a.connect(fmt.Sprintf("f_mrg%d", i), v+".port2", fmt.Sprintf("%s.port%d", merge, i))
	}
	m := a.mixer("mix1")
	ch := a.chamber("react1")
	vr := a.valve("v_react")
	split := a.node("n_split", 1, 2)
	a.flowChain("f_chain", merge+".port4", m+".port1")
	a.flowChain("f_mix", m+".port2", ch+".port1")
	a.flowChain("f_react", ch+".port2", vr+".port1")
	a.flowChain("f_split", vr+".port2", split+".port1")
	vOut := a.valve("v_out")
	vWaste := a.valve("v_waste")
	out := a.port("out")
	waste := a.port("waste")
	a.connect("f_out_a", split+".port2", vOut+".port1")
	a.connect("f_out_b", vOut+".port2", out+".port1")
	a.connect("f_waste_a", split+".port3", vWaste+".port1")
	a.connect("f_waste_b", vWaste+".port2", waste+".port1")
	return a.b.MustBuild()
}

// AquaFlex5A builds the five-reagent AquaFlex variant: five valved inlets,
// two mix-react stages in series, and a valved split to two collection
// outlets plus waste.
func AquaFlex5A() *core.Device {
	a := newAssay("aquaflex_5a")
	merge := a.node("n_merge", 5, 1)
	for i := 1; i <= 5; i++ {
		in := a.port(fmt.Sprintf("in%d", i))
		v := a.valve(fmt.Sprintf("v_in%d", i))
		a.connect(fmt.Sprintf("f_in%d", i), in+".port1", v+".port1")
		a.connect(fmt.Sprintf("f_mrg%d", i), v+".port2", fmt.Sprintf("%s.port%d", merge, i))
	}
	prev := merge + ".port6"
	for s := 1; s <= 2; s++ {
		m := a.mixer(fmt.Sprintf("mix%d", s))
		ch := a.chamber(fmt.Sprintf("react%d", s))
		v := a.valve(fmt.Sprintf("v_stage%d", s))
		a.connect(fmt.Sprintf("f_stage%d_a", s), prev, m+".port1")
		a.connect(fmt.Sprintf("f_stage%d_b", s), m+".port2", ch+".port1")
		a.connect(fmt.Sprintf("f_stage%d_c", s), ch+".port2", v+".port1")
		prev = v + ".port2"
	}
	split := a.node("n_split", 1, 3)
	a.connect("f_split", prev, split+".port1")
	for i, name := range []string{"outA", "outB", "waste"} {
		v := a.valve("v_" + name)
		p := a.port(name)
		a.connect(fmt.Sprintf("f_%s_a", name), fmt.Sprintf("%s.port%d", split, i+2), v+".port1")
		a.connect(fmt.Sprintf("f_%s_b", name), v+".port2", p+".port1")
	}
	return a.b.MustBuild()
}

// ChromatinImmunoprecipitation builds the ChIP automation chip: a pumped
// input bus feeding four cell-trap chambers, each isolated by valves on
// both sides, collecting through a pumped output bus.
func ChromatinImmunoprecipitation() *core.Device {
	a := newAssay("chromatin_immunoprecipitation")
	in := a.port("in_sample")
	inBuf := a.port("in_buffer")
	loadMerge := a.node("n_load", 2, 1)
	a.connect("f_s", in+".port1", loadMerge+".port1")
	a.connect("f_b", inBuf+".port1", loadMerge+".port2")
	p1 := a.pump("pump_in")
	a.connect("f_pump_in", loadMerge+".port3", p1+".port1")

	const traps = 4
	fanout := a.node("n_fan", 1, traps)
	a.connect("f_fan", p1+".port2", fanout+".port1")
	collect := a.node("n_collect", traps, 1)
	for i := 1; i <= traps; i++ {
		vi := a.valve(fmt.Sprintf("v_t%d_in", i))
		tr := a.trap(fmt.Sprintf("trap%d", i))
		vo := a.valve(fmt.Sprintf("v_t%d_out", i))
		a.connect(fmt.Sprintf("f_t%d_a", i), fmt.Sprintf("%s.port%d", fanout, 1+i), vi+".port1")
		a.connect(fmt.Sprintf("f_t%d_b", i), vi+".port2", tr+".port1")
		a.connect(fmt.Sprintf("f_t%d_c", i), tr+".port2", vo+".port1")
		a.connect(fmt.Sprintf("f_t%d_d", i), vo+".port2", fmt.Sprintf("%s.port%d", collect, i))
	}
	p2 := a.pump("pump_out")
	vw := a.valve("v_waste")
	split := a.node("n_out", 1, 2)
	out := a.port("out_product")
	waste := a.port("out_waste")
	a.connect("f_collect", fmt.Sprintf("%s.port%d", collect, traps+1), p2+".port1")
	a.connect("f_pump_out", p2+".port2", split+".port1")
	a.connect("f_out", split+".port2", out+".port1")
	a.connect("f_waste_a", split+".port3", vw+".port1")
	a.connect("f_waste_b", vw+".port2", waste+".port1")
	return a.b.MustBuild()
}

// GeneralPurposeMFD builds the general-purpose microfluidic device: a
// 1-to-8 demultiplexer feeding eight valved reaction chambers whose
// outputs collect through an 8-to-1 multiplexer.
func GeneralPurposeMFD() *core.Device {
	a := newAssay("general_purpose_mfd")
	const ways = 8
	in := a.port("in")
	out := a.port("out")
	demux := a.b.Component("demux", core.EntityMux, []string{a.flow}, 2400, 2400,
		mint.ConventionPorts(core.EntityMux, a.flow, 2400, 2400, 1, ways)...)
	muxc := a.b.Component("collect", core.EntityMux, []string{a.flow}, 2400, 2400,
		mint.ConventionPorts(core.EntityMux, a.flow, 2400, 2400, ways, 1)...)
	a.connect("f_in", in+".port1", demux+".port1")
	for i := 1; i <= ways; i++ {
		v1 := a.valve(fmt.Sprintf("v_r%d_in", i))
		ch := a.chamber(fmt.Sprintf("reactor%d", i))
		v2 := a.valve(fmt.Sprintf("v_r%d_out", i))
		a.connect(fmt.Sprintf("f_r%d_a", i), fmt.Sprintf("%s.port%d", demux, 1+i), v1+".port1")
		a.connect(fmt.Sprintf("f_r%d_b", i), v1+".port2", ch+".port1")
		a.connect(fmt.Sprintf("f_r%d_c", i), ch+".port2", v2+".port1")
		a.connect(fmt.Sprintf("f_r%d_d", i), v2+".port2", fmt.Sprintf("%s.port%d", muxc, i))
	}
	a.connect("f_out", fmt.Sprintf("%s.port%d", muxc, ways+1), out+".port1")
	return a.b.MustBuild()
}

// HIVDiagnostics builds the point-of-care HIV diagnostic chip: sample and
// reagent inlets, a five-stage serial mixer/valve train, a detection
// chamber, and product/waste outlets.
func HIVDiagnostics() *core.Device {
	a := newAssay("hiv_diagnostics")
	sample := a.port("in_sample")
	reagent := a.port("in_reagent")
	merge := a.node("n_merge", 2, 1)
	a.connect("f_sample", sample+".port1", merge+".port1")
	a.connect("f_reagent", reagent+".port1", merge+".port2")
	prev := merge + ".port3"
	const stages = 5
	for s := 1; s <= stages; s++ {
		m := a.mixer(fmt.Sprintf("mix%d", s))
		v := a.valve(fmt.Sprintf("v%d", s))
		a.connect(fmt.Sprintf("f_m%d", s), prev, m+".port1")
		a.connect(fmt.Sprintf("f_v%d", s), m+".port2", v+".port1")
		prev = v + ".port2"
	}
	det := a.b.TwoPort("detect", core.EntityDiamondChamber, a.flow, chamberSpan, chamberSpan)
	split := a.node("n_split", 1, 2)
	out := a.port("out")
	waste := a.port("waste")
	a.connect("f_detect", prev, det+".port1")
	a.connect("f_split", det+".port2", split+".port1")
	a.connect("f_out", split+".port2", out+".port1")
	a.connect("f_waste", split+".port3", waste+".port1")
	return a.b.MustBuild()
}

// MolecularGradients builds the molecular gradient generator: two inlets
// feeding a five-level diamond mixing lattice that widens from two to six
// mixers per level, with one outlet per bottom-level column.
func MolecularGradients() *core.Device {
	a := newAssay("molecular_gradients")
	inA := a.port("inA")
	inB := a.port("inB")
	// Lattice levels of widths 2..6; mixer (l,j) feeds (l+1,j) and (l+1,j+1).
	const firstWidth, lastWidth = 2, 6
	mk := func(l, j int) string { return fmt.Sprintf("g_l%d_%d", l, j) }
	for l := firstWidth; l <= lastWidth; l++ {
		for j := 0; j < l; j++ {
			id := mk(l, j)
			ports := mint.ConventionPorts(core.EntityGradient, a.flow, mixerXSpan, mixerYSpan, 2, 2)
			a.b.Component(id, core.EntityGradient, []string{a.flow}, mixerXSpan, mixerYSpan, ports...)
		}
	}
	// Inlets feed the top level.
	a.connect("f_inA", inA+".port1", mk(firstWidth, 0)+".port1")
	a.connect("f_inB", inB+".port1", mk(firstWidth, 1)+".port2")
	// Lattice internal edges: out ports are port3 (left child) and port4
	// (right child); in ports are port1 (from left parent) / port2 (right).
	for l := firstWidth; l < lastWidth; l++ {
		for j := 0; j < l; j++ {
			a.connect(fmt.Sprintf("f_%s_l", mk(l, j)), mk(l, j)+".port3", mk(l+1, j)+".port2")
			a.connect(fmt.Sprintf("f_%s_r", mk(l, j)), mk(l, j)+".port4", mk(l+1, j+1)+".port1")
		}
	}
	// One outlet per bottom-level mixer.
	for j := 0; j < lastWidth; j++ {
		out := a.port(fmt.Sprintf("out%d", j+1))
		a.connect(fmt.Sprintf("f_out%d", j+1), mk(lastWidth, j)+".port3", out+".port1")
	}
	return a.b.MustBuild()
}

// RotaryPCR builds the rotary PCR chip: valved sample and reagent loading
// into a rotary pump amplification loop, then a valved product outlet.
func RotaryPCR() *core.Device {
	a := newAssay("rotary_pcr")
	merge := a.node("n_load", 2, 1)
	for i, name := range []string{"sample", "reagent"} {
		p := a.port("in_" + name)
		v := a.valve("v_" + name)
		a.connect("f_"+name+"_a", p+".port1", v+".port1")
		a.connect("f_"+name+"_b", v+".port2", fmt.Sprintf("%s.port%d", merge, i+1))
	}
	rp := a.b.Component("rotary1", core.EntityRotaryPump, []string{a.flow, a.ctrl}, 3000, 3000,
		core.Port{Label: "port1", Layer: a.flow, X: 0, Y: 1500},
		core.Port{Label: "port2", Layer: a.flow, X: 3000, Y: 1500},
		core.Port{Label: "ctl1", Layer: a.ctrl, X: 750, Y: 0},
		core.Port{Label: "ctl2", Layer: a.ctrl, X: 1500, Y: 0},
		core.Port{Label: "ctl3", Layer: a.ctrl, X: 2250, Y: 0},
	)
	for i := 1; i <= 3; i++ {
		a.nCtl++
		cp := a.b.IOPort(fmt.Sprintf("cio%d", a.nCtl), a.ctrl, portSize)
		a.b.Connect(fmt.Sprintf("cnet%d", a.nCtl), a.ctrl,
			cp+".port1", fmt.Sprintf("%s.ctl%d", rp, i))
	}
	vLoop := a.valve("v_loop")
	vOut := a.valve("v_out")
	out := a.port("out")
	a.connect("f_load", merge+".port3", vLoop+".port1")
	a.connect("f_loop", vLoop+".port2", rp+".port1")
	a.connect("f_amp", rp+".port2", vOut+".port1")
	a.connect("f_out", vOut+".port2", out+".port1")
	return a.b.MustBuild()
}
