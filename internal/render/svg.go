// Package render draws feature-annotated ParchMint devices as SVG — the
// visual artifact a designer checks after place-and-route, and the medium
// benchmark maintainers use to document suite entries. Rendering consumes
// only the physical features; run the pnr flow first for logical-only
// devices.
package render

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
)

// Options tunes the rendering.
type Options struct {
	// Scale converts micrometers to SVG pixels; 0 means 0.02 (50 µm/px).
	Scale float64
	// ShowLabels draws component IDs at their centers.
	ShowLabels bool
	// Layers restricts rendering to the given layer IDs; nil means all,
	// drawn in device layer order (flow under control).
	Layers []string
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.02
	}
	return o.Scale
}

// entityFill maps entities to fill colors. Unknown entities share a
// neutral gray.
var entityFill = map[string]string{
	core.EntityPort:           "#7f8c8d",
	core.EntityMixer:          "#2980b9",
	core.EntityGradient:       "#3498db",
	core.EntityValve:          "#c0392b",
	core.EntityValve3D:        "#e74c3c",
	core.EntityPump:           "#8e44ad",
	core.EntityRotaryPump:     "#9b59b6",
	core.EntityMux:            "#16a085",
	core.EntityTree:           "#1abc9c",
	core.EntityChamber:        "#d35400",
	core.EntityDiamondChamber: "#e67e22",
	core.EntityCellTrap:       "#f39c12",
	core.EntityTransposer:     "#27ae60",
	core.EntityNode:           "#2c3e50",
}

// layerStroke maps layer types to channel stroke colors.
func layerStroke(t core.LayerType) string {
	if t == core.LayerControl {
		return "#e74c3c"
	}
	return "#2c3e50"
}

// SVG renders the device's features. It returns an error when the device
// carries no physical geometry.
func SVG(d *core.Device, opts Options) (string, error) {
	if len(d.Features) == 0 {
		return "", fmt.Errorf("render: device %q has no features; run place-and-route first", d.Name)
	}
	wanted := map[string]bool{}
	for _, l := range opts.Layers {
		wanted[l] = true
	}
	keep := func(layer string) bool { return len(wanted) == 0 || wanted[layer] }

	// Bounds over everything rendered.
	var bounds geom.Rect
	n := 0
	for i := range d.Features {
		f := &d.Features[i]
		if !keep(f.Layer) {
			continue
		}
		bounds = bounds.Union(f.Footprint())
		n++
	}
	if n == 0 {
		return "", fmt.Errorf("render: no features on the requested layers")
	}
	bounds = bounds.Inflate(500) // margin, µm

	s := opts.scale()
	px := func(v int64) float64 { return float64(v) * s }
	x := func(v int64) float64 { return px(v - bounds.Min.X) }
	y := func(v int64) float64 { return px(v - bounds.Min.Y) }

	ix := d.Index()
	layerType := func(id string) core.LayerType {
		if l := ix.Layer(id); l != nil {
			return l.Type
		}
		return core.LayerFlow
	}
	// Layer draw order: device order, unknown layers last.
	order := map[string]int{}
	for i, l := range d.Layers {
		order[l.ID] = i
	}
	feats := make([]*core.Feature, 0, len(d.Features))
	for i := range d.Features {
		if keep(d.Features[i].Layer) {
			feats = append(feats, &d.Features[i])
		}
	}
	sort.SliceStable(feats, func(a, b int) bool {
		oa, ok1 := order[feats[a].Layer]
		ob, ok2 := order[feats[b].Layer]
		if !ok1 {
			oa = len(order)
		}
		if !ok2 {
			ob = len(order)
		}
		if oa != ob {
			return oa < ob
		}
		// Channels under components within a layer.
		return feats[a].Kind == core.FeatureChannel && feats[b].Kind == core.FeatureComponent
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		px(bounds.Dx()), px(bounds.Dy()), px(bounds.Dx()), px(bounds.Dy()))
	fmt.Fprintf(&sb, `<title>%s</title>`+"\n", escape(d.Name))
	sb.WriteString(`<rect width="100%" height="100%" fill="#fdfdfd"/>` + "\n")

	for _, f := range feats {
		switch f.Kind {
		case core.FeatureChannel:
			w := px(f.Width)
			if w < 1 {
				w = 1
			}
			fmt.Fprintf(&sb,
				`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f" stroke-linecap="round" opacity="0.8"><title>%s</title></line>`+"\n",
				x(f.Source.X), y(f.Source.Y), x(f.Sink.X), y(f.Sink.Y),
				layerStroke(layerType(f.Layer)), w, escape(f.Connection))
		case core.FeatureComponent:
			fill := entityFill["?"]
			entity := ""
			if c := ix.Component(f.ID); c != nil {
				entity = c.Entity
			}
			if v, ok := entityFill[entity]; ok {
				fill = v
			} else {
				fill = "#95a5a6"
			}
			fmt.Fprintf(&sb,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#34495e" stroke-width="0.5" opacity="0.9"><title>%s (%s)</title></rect>`+"\n",
				x(f.Location.X), y(f.Location.Y), px(f.XSpan), px(f.YSpan),
				fill, escape(f.ID), escape(entity))
			if opts.ShowLabels {
				cx := x(f.Location.X + f.XSpan/2)
				cy := y(f.Location.Y + f.YSpan/2)
				fmt.Fprintf(&sb,
					`<text x="%.1f" y="%.1f" font-size="8" text-anchor="middle" fill="#ffffff">%s</text>`+"\n",
					cx, cy, escape(f.ID))
			}
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

// escape makes text safe for SVG/XML.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
