package render

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/route"
)

func annotated(t testing.TB) *core.Device {
	t.Helper()
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pnr.Run(b.Build(), pnr.Options{
		Placer: place.Greedy{},
		Router: route.AStar{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Device
}

func TestSVGRendersAnnotatedDevice(t *testing.T) {
	d := annotated(t)
	svg, err := SVG(d, Options{})
	if err != nil {
		t.Fatalf("SVG: %v", err)
	}
	if !strings.HasPrefix(svg, "<svg ") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("output is not an SVG document")
	}
	// One rect per component feature (+1 background), one line per segment.
	rects := strings.Count(svg, "<rect ")
	lines := strings.Count(svg, "<line ")
	comps, chans := 0, 0
	for _, f := range d.Features {
		if f.Kind == core.FeatureComponent {
			comps++
		} else {
			chans++
		}
	}
	if rects != comps+1 {
		t.Errorf("rects = %d, want %d components + background", rects, comps)
	}
	if lines != chans {
		t.Errorf("lines = %d, want %d segments", lines, chans)
	}
	if !strings.Contains(svg, "<title>rotary_pcr</title>") {
		t.Error("device title missing")
	}
}

func TestSVGDeterministic(t *testing.T) {
	d := annotated(t)
	a, err := SVG(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SVG(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("rendering is nondeterministic")
	}
}

func TestSVGLabels(t *testing.T) {
	d := annotated(t)
	plain, _ := SVG(d, Options{})
	labeled, err := SVG(d, Options{ShowLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(plain, "<text ") != 0 {
		t.Error("labels drawn without ShowLabels")
	}
	if strings.Count(labeled, "<text ") == 0 {
		t.Error("ShowLabels drew no labels")
	}
	if !strings.Contains(labeled, ">rotary1</text>") {
		t.Error("expected rotary1 label")
	}
}

func TestSVGLayerFilter(t *testing.T) {
	d := annotated(t)
	flowOnly, err := SVG(d, Options{Layers: []string{"flow"}})
	if err != nil {
		t.Fatal(err)
	}
	all, _ := SVG(d, Options{})
	if strings.Count(flowOnly, "<line ") >= strings.Count(all, "<line ") {
		t.Error("layer filter did not reduce channel count")
	}
	if _, err := SVG(d, Options{Layers: []string{"ghost"}}); err == nil {
		t.Error("empty layer selection should error")
	}
}

func TestSVGScale(t *testing.T) {
	d := annotated(t)
	small, _ := SVG(d, Options{Scale: 0.01})
	big, _ := SVG(d, Options{Scale: 0.1})
	if small == big {
		t.Error("scale has no effect")
	}
}

func TestSVGErrorsWithoutFeatures(t *testing.T) {
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SVG(b.Build(), Options{}); err == nil {
		t.Error("logical-only device should error")
	}
}

func TestSVGEscapesText(t *testing.T) {
	d := &core.Device{
		Name:   `evil<>&"device`,
		Layers: []core.Layer{{ID: "flow", Name: "flow", Type: core.LayerFlow}},
		Features: []core.Feature{{
			Kind: core.FeatureComponent, ID: "c<1>", Layer: "flow",
			Location: geom.Pt(0, 0), XSpan: 100, YSpan: 100,
		}},
	}
	svg, err := SVG(d, Options{ShowLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "evil<>") || strings.Contains(svg, "c<1>") {
		t.Error("unescaped text in SVG output")
	}
	if !strings.Contains(svg, "evil&lt;&gt;&amp;&quot;device") {
		t.Error("escaped title missing")
	}
}
