// Assay design: construct a custom serial-dilution assay chip from scratch
// with the builder API — the workflow a microfluidic designer follows to
// contribute a new benchmark — then validate it and export both ParchMint
// JSON and MINT.
//
//	go run ./examples/assaydesign
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/validate"
)

func main() {
	device, err := buildSerialDilution(4)
	if err != nil {
		log.Fatal(err)
	}

	report := validate.Validate(device)
	fmt.Printf("validation: %d errors, %d warnings\n", report.Errors(), report.Warnings())
	if !report.OK() {
		log.Fatalf("design has errors:\n%s", report)
	}

	stats := device.Stats()
	fmt.Printf("designed %q: %d components, %d connections on %d layers\n",
		device.Name, stats.Components, stats.Connections, stats.Layers)

	// Export ParchMint JSON (the interchange artifact)...
	data, err := core.Marshal(device)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ParchMint JSON: %d bytes\n", len(data))

	// ...and MINT for tools that consume the Fluigi HDL. The valves span
	// two layers, which MINT cannot express, so the converter reports notes.
	f, fid, err := mint.FromDevice(device)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MINT conversion: %d fidelity notes\n", len(fid.Notes))
	fmt.Println("---- MINT ----")
	fmt.Print(mint.Print(f))
}

// buildSerialDilution creates a chip that mixes a sample with buffer
// through `stages` successive 1:1 dilution stages, tapping each stage's
// output through a valve to its own outlet.
func buildSerialDilution(stages int) (*core.Device, error) {
	b := core.NewBuilder("serial_dilution")
	flow := b.FlowLayer()
	ctrl := b.ControlLayer()

	sample := b.IOPort("in_sample", flow, 200)
	buffer := b.IOPort("in_buffer", flow, 200)

	prev := sample + ".port1"
	for s := 1; s <= stages; s++ {
		// Each stage: a mixer fed by the previous dilution and fresh buffer
		// through a junction, then a tap valve to an outlet.
		junction := b.Component(fmt.Sprintf("j%d", s), core.EntityNode, []string{flow}, 100, 100,
			core.Port{Label: "port1", Layer: flow, X: 0, Y: 33},
			core.Port{Label: "port2", Layer: flow, X: 0, Y: 66},
			core.Port{Label: "port3", Layer: flow, X: 100, Y: 50},
		)
		mixer := b.TwoPort(fmt.Sprintf("mix%d", s), core.EntityMixer, flow, 2000, 1000)
		splitter := b.Component(fmt.Sprintf("split%d", s), core.EntityNode, []string{flow}, 100, 100,
			core.Port{Label: "port1", Layer: flow, X: 0, Y: 50},
			core.Port{Label: "port2", Layer: flow, X: 100, Y: 33},
			core.Port{Label: "port3", Layer: flow, X: 100, Y: 66},
		)
		tap := b.Component(fmt.Sprintf("tap%d", s), core.EntityValve, []string{flow, ctrl}, 300, 300,
			core.Port{Label: "port1", Layer: flow, X: 0, Y: 150},
			core.Port{Label: "port2", Layer: flow, X: 300, Y: 150},
			core.Port{Label: "ctl", Layer: ctrl, X: 150, Y: 0},
		)
		tapCtl := b.IOPort(fmt.Sprintf("ctl%d", s), ctrl, 200)
		outlet := b.IOPort(fmt.Sprintf("out%d", s), flow, 200)

		b.Connect(fmt.Sprintf("c%d_prev", s), flow, prev, junction+".port1")
		b.Connect(fmt.Sprintf("c%d_buf", s), flow, buffer+".port1", junction+".port2")
		b.Connect(fmt.Sprintf("c%d_mix", s), flow, junction+".port3", mixer+".port1")
		b.Connect(fmt.Sprintf("c%d_split", s), flow, mixer+".port2", splitter+".port1")
		b.Connect(fmt.Sprintf("c%d_tap", s), flow, splitter+".port2", tap+".port1")
		b.Connect(fmt.Sprintf("c%d_out", s), flow, tap+".port2", outlet+".port1")
		b.Connect(fmt.Sprintf("c%d_ctl", s), ctrl, tapCtl+".port1", tap+".ctl")

		prev = splitter + ".port3"
	}
	// The final dilution goes to waste.
	waste := b.IOPort("waste", flow, 200)
	b.Connect("c_waste", flow, prev, waste+".port1")
	b.Param("channelWidth", 100)
	return b.Build()
}
