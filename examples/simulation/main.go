// Simulation: verify a benchmark behaves like the device it models — drive
// the molecular gradient generator hydraulically and confirm it produces a
// monotone concentration gradient across its six outlets.
//
//	go run ./examples/simulation
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/sim"
)

func main() {
	b, err := bench.ByName("molecular_gradients")
	if err != nil {
		log.Fatal(err)
	}
	device := b.Build()

	// Build the Hagen–Poiseuille resistance network of the flow layer.
	network, err := sim.Build(device, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hydraulic network: %d nodes, %d resistors\n",
		network.NumNodes(), network.NumResistors())

	// Drive both inlets at 10 kPa, all outlets at ambient.
	bcs := []sim.BC{
		{Node: "inA.port1", Pressure: 10000},
		{Node: "inB.port1", Pressure: 10000},
	}
	for i := 1; i <= 6; i++ {
		bcs = append(bcs, sim.BC{Node: sim.NodeID(fmt.Sprintf("out%d.port1", i))})
	}
	sol, err := network.Solve(bcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pressure solve converged in %d iterations\n", sol.Iterations)

	// Inlet A carries the species at concentration 1, inlet B pure buffer.
	conc, err := network.Concentrations(sol, map[sim.NodeID]float64{
		"inA.port1": 1,
		"inB.port1": 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ngradient profile across the outlets:")
	for i := 1; i <= 6; i++ {
		node := sim.NodeID(fmt.Sprintf("out%d.port1", i))
		c := conc[node]
		bar := ""
		for j := 0; j < int(c*40+0.5); j++ {
			bar += "#"
		}
		fmt.Printf("  out%d  %.3f  %s\n", i, c, bar)
	}
	fmt.Println("\nthe lattice dilutes monotonically from the A side to the B side —")
	fmt.Println("the behavior the gradient-generator benchmark exists to exercise.")
}
