// PnR flow: run the full physical design pipeline on a benchmark —
// compare the three placement engines, route with A*, and write the
// feature-annotated device (placed footprints + routed channels) as
// ParchMint JSON.
//
//	go run ./examples/pnrflow
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/route"
	"repro/internal/validate"
)

func main() {
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		log.Fatal(err)
	}
	device := b.Build()

	// Compare the placement engines head to head.
	fmt.Println("placement engine comparison on", device.Name)
	for _, eng := range place.Engines() {
		p, err := eng.Place(context.Background(), device, place.NewOptions(place.WithSeed(42)))
		if err != nil {
			log.Fatal(err)
		}
		m := place.Evaluate(p)
		fmt.Printf("  %-7s HPWL %7d um   area %6.2f mm2\n",
			eng.Name(), m.HPWL, float64(m.Area)/1e6)
	}

	// Run the end-to-end flow with the annealer and A*.
	res, err := pnr.Run(device, pnr.NewOptions(
		pnr.WithPlacer(place.Annealer{}),
		pnr.WithRouter(route.AStar{}),
		pnr.WithSeed(42),
	))
	if err != nil {
		log.Fatal(err)
	}
	rr := res.RouteReport
	fmt.Printf("\nrouting (astar): %d/%d nets routed (%.0f%%), %d um of channel\n",
		rr.Routed(), rr.Total(), 100*rr.CompletionRate(), rr.TotalLength())

	// The annotated device now carries physical features and still
	// validates (feature rules included).
	fmt.Printf("features attached: %d\n", len(res.Device.Features))
	report := validate.Validate(res.Device)
	fmt.Printf("validation of placed device: %d errors\n", report.Errors())

	data, err := core.Marshal(res.Device)
	if err != nil {
		log.Fatal(err)
	}
	out := "rotary_pcr_placed.json"
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, len(data))
}
