// Quickstart: build a suite benchmark, validate it, inspect its netlist,
// and write it out as ParchMint v1 JSON.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/validate"
)

func main() {
	// 1. Build a benchmark device from the suite.
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		log.Fatal(err)
	}
	device := b.Build()
	fmt.Printf("built %q: %s\n", device.Name, b.Description)

	// 2. Validate it: suite devices are clean by construction.
	report := validate.Validate(device)
	fmt.Printf("validation: %d errors, %d warnings\n", report.Errors(), report.Warnings())
	if !report.OK() {
		log.Fatalf("unexpected validation failure:\n%s", report)
	}

	// 3. Inspect the netlist graph.
	graph := netlist.Build(device)
	deg := graph.Degrees()
	fmt.Printf("netlist: %d components, %d nets, avg degree %.2f, connected=%v\n",
		graph.NumNodes(), graph.NumNets(), deg.Mean, graph.IsConnected())
	path := graph.ShortestPath("in1", "out")
	fmt.Printf("in1 -> out flows through %d components: %v\n", len(path), path)

	// 4. Serialize to ParchMint v1 JSON.
	data, err := core.Marshal(device)
	if err != nil {
		log.Fatal(err)
	}
	out := "aquaflex_3b.json"
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, len(data))

	// 5. Round-trip: reading it back yields an identical device.
	back, err := core.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip lossless: %v\n", core.Equal(device, back))
}
