// Interchange: demonstrate format exchange between the MINT HDL and
// ParchMint JSON — parse a MINT design, convert to ParchMint, validate,
// serialize, and convert back to MINT, verifying nothing was lost.
//
//	go run ./examples/interchange
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/validate"
)

// mintSource is a small mixing chip in the Fluigi MINT HDL.
const mintSource = `# Two-reagent mixing chip with a gradient tree fan-out.
DEVICE mixing_tree

LAYER FLOW
    PORT inA, inB r=100 ;
    MIXER m1 w=2000 h=1000 in=2 out=1 ;
    TREE fan w=1500 h=1500 in=1 out=4 ;
    PORT o1, o2, o3, o4 r=100 ;

    CHANNEL c1 from inA 1 to m1 1 w=120 ;
    CHANNEL c2 from inB 1 to m1 2 w=120 ;
    CHANNEL c3 from m1 3 to fan 1 w=120 ;
    CHANNEL c4 from fan 2 to o1 1 ;
    CHANNEL c5 from fan 3 to o2 1 ;
    CHANNEL c6 from fan 4 to o3 1 ;
    CHANNEL c7 from fan 5 to o4 1 ;
END LAYER
`

func main() {
	// 1. Parse the MINT source.
	file, err := mint.Parse(mintSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed MINT device %q: %d layer block(s)\n", file.DeviceName, len(file.Layers))

	// 2. Convert to a ParchMint device.
	device, fidelity, err := mint.ToDevice(file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted to ParchMint: %d components, %d connections, lossless=%v\n",
		device.Stats().Components, device.Stats().Connections, fidelity.Lossless())

	// 3. Validate — interchange only matters if the result is well formed.
	report := validate.Validate(device)
	if !report.OK() {
		log.Fatalf("converted device invalid:\n%s", report)
	}
	fmt.Println("validation: clean")

	// 4. Serialize through ParchMint JSON and back.
	data, err := core.Marshal(device)
	if err != nil {
		log.Fatal(err)
	}
	back, err := core.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON round trip (%d bytes): lossless=%v\n", len(data), core.Equal(device, back))

	// 5. Convert back to MINT and compare canonically.
	file2, fid2, err := mint.FromDevice(back)
	if err != nil {
		log.Fatal(err)
	}
	file.Canonicalize()
	file2.Canonicalize()
	same := mint.Print(file) == mint.Print(file2)
	fmt.Printf("MINT round trip: lossless=%v, canonical-equal=%v\n", fid2.Lossless(), same)
	fmt.Println("---- canonical MINT ----")
	fmt.Print(mint.Print(file2))
}
