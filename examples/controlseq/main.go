// Control sequencing: synthesize the valve actuation program for a ChIP
// assay protocol — load the sample into each trap chamber in turn, then
// flush the collected product — tracing every actuation to the chip
// control port an operator would drive.
//
//	go run ./examples/controlseq
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/control"
)

func main() {
	b, err := bench.ByName("chromatin_immunoprecipitation")
	if err != nil {
		log.Fatal(err)
	}
	device := b.Build()
	planner, err := control.NewPlanner(device)
	if err != nil {
		log.Fatal(err)
	}

	// The protocol: load sample into traps 1 and 2, then elute to product.
	plan, err := planner.Schedule([]control.Step{
		{From: "in_sample", To: "trap1"},
		{From: "in_sample", To: "trap2"},
		{From: "trap1", To: "out_product"},
		{From: "trap2", To: "out_product"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Render())

	// Summarize the actuation cost of the protocol.
	opens, closes, pumps := 0, 0, 0
	for _, ph := range plan.Phases {
		opens += len(ph.Open)
		closes += len(ph.Close)
		pumps += len(ph.Pumps)
	}
	fmt.Printf("\nprotocol totals: %d valve openings, %d closings, %d pump programs\n",
		opens, closes, pumps)
}
