// End-to-end integration tests: every subsystem chained the way a
// downstream user would chain them, across the whole benchmark suite.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/drc"
	"repro/internal/mint"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/render"
	"repro/internal/route"
	"repro/internal/schema"
	"repro/internal/sim"
	"repro/internal/validate"
)

// TestFullPipelinePerBenchmark drives each benchmark through the complete
// toolchain: generate -> serialize -> schema-check -> reparse -> validate
// -> graph -> place -> route -> attach features -> revalidate -> DRC ->
// render -> diff. Fast engines (greedy + A*) keep the whole suite's
// pipeline under test in reasonable time.
func TestFullPipelinePerBenchmark(t *testing.T) {
	for _, b := range bench.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			// Generate and serialize.
			d := b.Build()
			data, err := core.Marshal(d)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			// Structural schema over the produced bytes.
			if sr := schema.Check(data); !sr.OK() {
				t.Fatalf("schema: %s", sr)
			}
			// Reparse and compare.
			back, err := core.Unmarshal(data)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !core.Equal(d, back) {
				t.Fatal("round trip changed the device")
			}
			// Semantic validation.
			if vr := validate.Validate(back); !vr.OK() {
				t.Fatalf("validate: %s", vr)
			}
			// Graph analytics.
			g := netlist.Build(back)
			if !g.IsConnected() {
				t.Fatal("netlist disconnected")
			}
			// Physical design.
			res, err := pnr.Run(back, pnr.Options{
				Placer: place.Greedy{},
				Router: route.AStar{},
			})
			if err != nil {
				t.Fatalf("pnr: %v", err)
			}
			if res.PlaceMetrics.Overlaps != 0 {
				t.Fatalf("placement has %d overlaps", res.PlaceMetrics.Overlaps)
			}
			// The annotated device still validates.
			if vr := validate.Validate(res.Device); !vr.OK() {
				t.Fatalf("post-pnr validate: %s", vr)
			}
			// DRC: the flow never produces channel crossings or component
			// clearance violations.
			dr := drc.Check(res.Device, drc.Rules{})
			if n := dr.CountRule(drc.RuleCrossing); n != 0 {
				t.Errorf("drc: %d channel crossings", n)
			}
			if n := dr.CountRule(drc.RuleClearance); n != 0 {
				t.Errorf("drc: %d clearance violations", n)
			}
			if n := dr.CountRule(drc.RuleIncursion); n != 0 {
				t.Errorf("drc: %d component incursions", n)
			}
			// Render.
			svg, err := render.SVG(res.Device, render.Options{})
			if err != nil {
				t.Fatalf("render: %v", err)
			}
			if !strings.Contains(svg, "</svg>") {
				t.Error("render produced a truncated document")
			}
			// The annotated device differs from the original only by
			// features.
			dr2 := diff.Devices(d, res.Device)
			for _, e := range dr2.Entries {
				if e.Section != "feature" {
					t.Errorf("unexpected non-feature diff: %s", e)
				}
			}
		})
	}
}

// TestMintExchangeAcrossSuite converts every benchmark to MINT and back,
// asserting the documented fidelity contract: output always reparses,
// degradations always carry notes, and the reconverted device validates.
func TestMintExchangeAcrossSuite(t *testing.T) {
	for _, b := range bench.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			d := b.Build()
			f, fid, err := mint.FromDevice(d)
			if err != nil {
				t.Fatalf("FromDevice: %v", err)
			}
			text := mint.Print(f)
			f2, err := mint.Parse(text)
			if err != nil {
				t.Fatalf("printed MINT does not reparse: %v", err)
			}
			d2, _, err := mint.ToDevice(f2)
			if err != nil {
				t.Fatalf("ToDevice: %v", err)
			}
			if vr := validate.Validate(d2); vr.Errors() > 0 {
				t.Fatalf("reconverted device invalid:\n%s", vr)
			}
			// Lossless conversions reproduce the device canonically.
			if fid.Lossless() {
				a, c := d.Clone(), d2
				a.Canonicalize()
				c.Canonicalize()
				if !core.Equal(a, c) {
					t.Error("lossless conversion did not round trip")
				}
			}
		})
	}
}

// TestHydraulicsAcrossAssaySuite solves a pressure-driven flow on every
// assay benchmark: one inlet high, every other flow IO port at ambient,
// asserting conservation and positive source inflow.
func TestHydraulicsAcrossAssaySuite(t *testing.T) {
	for _, b := range bench.Suite() {
		if b.Class != bench.Assay {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			d := b.Build()
			network, err := sim.Build(d, sim.Options{})
			if err != nil {
				t.Fatalf("sim build: %v", err)
			}
			var ioNodes []sim.NodeID
			for i := range d.Components {
				c := &d.Components[i]
				if c.Entity == core.EntityPort && len(c.Layers) == 1 && c.Layers[0] == "flow" {
					ioNodes = append(ioNodes, sim.NodeID(c.ID+".port1"))
				}
			}
			if len(ioNodes) < 2 {
				t.Skip("fewer than two flow IO ports")
			}
			bcs := []sim.BC{{Node: ioNodes[0], Pressure: 10000}}
			for _, n := range ioNodes[1:] {
				bcs = append(bcs, sim.BC{Node: n})
			}
			sol, err := network.Solve(bcs)
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			// The pressurized source injects fluid: its net *inflow* is
			// negative (flow leaves it into the network).
			if out := network.Imbalance(sol, ioNodes[0]); out >= 0 {
				t.Errorf("source imbalance = %g, want negative (outflow)", out)
			}
			// Global conservation across all boundary nodes.
			total := 0.0
			for _, n := range ioNodes {
				total += network.Imbalance(sol, n)
			}
			if total > 1e-12 || total < -1e-12 {
				t.Errorf("global imbalance = %g", total)
			}
		})
	}
}

// TestControlPlansAcrossAssaySuite synthesizes a transfer plan on every
// assay benchmark and checks open/close consistency.
func TestControlPlansAcrossAssaySuite(t *testing.T) {
	for _, b := range bench.Suite() {
		if b.Class != bench.Assay {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			d := b.Build()
			planner, err := control.NewPlanner(d)
			if err != nil {
				t.Fatalf("planner: %v", err)
			}
			var ports []string
			for i := range d.Components {
				c := &d.Components[i]
				if c.Entity == core.EntityPort && len(c.Layers) == 1 && c.Layers[0] == "flow" {
					ports = append(ports, c.ID)
				}
			}
			if len(ports) < 2 {
				t.Skip("fewer than two flow ports")
			}
			ph, err := planner.PlanPhase("t", ports[0], ports[len(ports)-1])
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			open := map[string]bool{}
			for _, a := range ph.Open {
				open[a.Component] = true
			}
			for _, a := range ph.Close {
				if open[a.Component] {
					t.Errorf("valve %s both opened and closed", a.Component)
				}
			}
		})
	}
}
