// Command freeport prints n free loopback TCP ports, one per line.
//
// The cluster smoke test needs it because -peers is the full membership:
// every node must know every peer's address before any node boots, so
// the usual "listen on :0 and write a -port-file" trick cannot work.
// All n listeners are held open while the ports are gathered, then
// closed together, so the same port is never printed twice.
//
// The usual caveat applies: a printed port is only reserved until this
// process exits, so a racing process could grab it first. For a smoke
// test on a quiet CI loopback that is fine; retry the script if you are
// spectacularly unlucky.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
)

func main() {
	n := flag.Int("n", 1, "number of distinct free ports to print")
	flag.Parse()
	lns := make([]net.Listener, 0, *n)
	for i := 0; i < *n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "freeport:", err)
			os.Exit(1)
		}
		lns = append(lns, ln)
	}
	for _, ln := range lns {
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
		ln.Close()
	}
}
