#!/usr/bin/env bash
# Three-node consistent-hash cluster smoke test over real HTTP with a
# race-enabled binary. The scenario the in-process tests approximate,
# crossed with a real unclean process death:
#
#   1. Boot three peers, each with its own journal.
#   2. Ask /internal/shard which node owns a stats request's key, then
#      send the request to a WRONG shard: it must come back forwarded
#      (X-Parchmint-Shard names the owner, X-Parchmint-Forwarded the
#      relay) and byte-identical to the owner's own answer.
#   3. Repeat through the wrong shard: the owner's cache must answer
#      (X-Parchmint-Cache: hit), same bytes.
#   4. Submit the same work as a job through the wrong shard: it routes
#      to the owner; polling through the relay fans out to find it.
#   5. kill -9 the owner, boot a replacement from the dead node's
#      journal with the same -self: the job's bytes must replay as a
#      durable hit, byte-identical — the journal is a complete handoff
#      unit. Survivors keep answering the original request with the
#      original bytes throughout.
set -euo pipefail

GO=${GO:-go}

command -v curl >/dev/null 2>&1 || { echo "cluster-smoke: curl not found, skipping"; exit 0; }

tmp=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "cluster-smoke: building race-enabled binary"
$GO build -race -o "$tmp/parchmint-serve" ./cmd/parchmint-serve

mapfile -t ports < <($GO run ./scripts/freeport -n 3)
urls=()
for p in "${ports[@]}"; do urls+=("http://127.0.0.1:$p"); done
peers=$(IFS=,; echo "${urls[*]}")

boot() { # boot <idx>: start node idx with its own journal; records pids[idx]
  local i=$1
  "$tmp/parchmint-serve" -addr "127.0.0.1:${ports[$i]}" \
    -cache-bytes 67108864 -journal "$tmp/journal-$i.jsonl" \
    -peers "$peers" -self "${urls[$i]}" -peer-health 250ms \
    2>>"$tmp/log-$i" &
  pids[$i]=$!
  disown "$!" # keep bash from reporting the kill -9 at cleanup
}

wait_healthy() { # wait_healthy <url>
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "cluster-smoke: $1 never became healthy"; return 1
}

for i in 0 1 2; do boot "$i"; done
for u in "${urls[@]}"; do wait_healthy "$u"; done

body='{"bench":"rotary_pcr"}'
submit='{"op":"stats","bench":"rotary_pcr"}'

# Which node owns this request's key? Every node answers identically.
shard=$(curl -sfS -X POST -d "$submit" "${urls[0]}/internal/shard")
owner=$(sed -n 's/.*"owner":"\([^"]*\)".*/\1/p' <<<"$shard")
[ -n "$owner" ] || { echo "cluster-smoke: no owner in $shard"; exit 1; }
owner_idx=-1 relay=""
for i in 0 1 2; do
  if [ "${urls[$i]}" = "$owner" ]; then owner_idx=$i
  elif [ -z "$relay" ]; then relay=${urls[$i]}
  fi
done
[ "$owner_idx" -ge 0 ] || { echo "cluster-smoke: owner $owner not a member"; exit 1; }
echo "cluster-smoke: owner is node $owner_idx ($owner), submitting via wrong shard $relay"

# 2. Wrong shard forwards: hop headers, then byte-identity with the owner.
curl -sfS -D "$tmp/h1" -o "$tmp/b1" -X POST -d "$body" "$relay/v1/stats"
grep -i '^x-parchmint-shard:' "$tmp/h1" | grep -qF "$owner"
grep -i '^x-parchmint-forwarded:' "$tmp/h1" | grep -qF "$relay"
grep -qi '^x-parchmint-cache: miss' "$tmp/h1"
curl -sfS -D "$tmp/h2" -o "$tmp/b2" -X POST -d "$body" "$owner/v1/stats"
grep -qi '^x-parchmint-cache: hit' "$tmp/h2"
cmp -s "$tmp/b1" "$tmp/b2" || { echo "cluster-smoke: forwarded bytes differ from owner's"; exit 1; }

# 3. Repeat via the wrong shard: the owner's cache answers through the relay.
curl -sfS -D "$tmp/h3" -o "$tmp/b3" -X POST -d "$body" "$relay/v1/stats"
grep -qi '^x-parchmint-cache: hit' "$tmp/h3"
cmp -s "$tmp/b1" "$tmp/b3" || { echo "cluster-smoke: repeat bytes differ"; exit 1; }

# 4. Job through the wrong shard: routes to the owner, readable anywhere.
jobdoc=$(curl -sfS -X POST -d "$submit" "$relay/v1/jobs")
id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$jobdoc")
[ -n "$id" ] || { echo "cluster-smoke: no job id in $jobdoc"; exit 1; }
for _ in $(seq 1 100); do
  doc=$(curl -sfS "$relay/v1/jobs/$id")
  grep -q '"status":"completed"' <<<"$doc" && break
  sleep 0.2
done
grep -q '"status":"completed"' <<<"$doc" || { echo "cluster-smoke: job never completed: $doc"; exit 1; }
curl -sfS -o "$tmp/jr1" "$relay/v1/jobs/$id/result"
cmp -s "$tmp/jr1" "$tmp/b1" || { echo "cluster-smoke: job result differs from sync bytes"; exit 1; }

# 5. Kill the owner without ceremony; its journal is the handoff unit.
kill -9 "${pids[$owner_idx]}"
wait "${pids[$owner_idx]}" 2>/dev/null || true

# Survivors keep answering with the original bytes (forward fails over
# to local compute / peer probe — determinism makes any path identical).
curl -sfS -o "$tmp/b4" -X POST -d "$body" "$relay/v1/stats"
cmp -s "$tmp/b1" "$tmp/b4" || { echo "cluster-smoke: bytes changed after owner death"; exit 1; }

# Replacement boots from the dead node's journal with the same -self:
# the replayed job must serve its journaled bytes as a durable hit.
boot "$owner_idx"
wait_healthy "$owner"
curl -sfS -D "$tmp/h5" -o "$tmp/jr2" "$owner/v1/jobs/$id/result"
grep -qi '^x-parchmint-cache: hit' "$tmp/h5"
cmp -s "$tmp/jr1" "$tmp/jr2" || { echo "cluster-smoke: handoff bytes differ"; exit 1; }

# No data race tripped anywhere (the -race binary aborts the process and
# logs to stderr if one did; belt and braces, grep the logs).
if grep -l 'WARNING: DATA RACE' "$tmp"/log-* >/dev/null 2>&1; then
  echo "cluster-smoke: data race detected:"; cat "$tmp"/log-*; exit 1
fi

echo "cluster-smoke: ok"
